"""Deterministic discrete-event simulation kernel.

The :class:`Simulator` owns a binary-heap event calendar keyed by
``(time, priority, sequence)``; equal-time events are processed in the
order they were scheduled, which makes every run bit-reproducible for a
given seed (see :mod:`repro.sim.rng`).

The kernel is deliberately small: time, a heap, and event processing.
Higher-level behaviour (processes, resources, queues) is layered on top.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable, Generator, List, Optional, Tuple

from .events import AllOf, AnyOf, Event, Timeout
from .process import Process
from .trace import Tracer

__all__ = ["Simulator", "StopSimulation"]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run`."""


#: Priority for ordinary events.
NORMAL = 1
#: Priority used by ``run(until=...)`` sentinels so that the stop event
#: is handled after same-time normal events.
LOW = 2


class Simulator:
    """A discrete-event simulator with simulated seconds as time unit."""

    def __init__(self, trace: Optional[Tracer] = None) -> None:
        self._now: float = 0.0
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = count()
        self.trace = trace or Tracer(enabled=False)
        #: Optional request-lifecycle tracer (a
        #: :class:`repro.obs.tracer.RequestTracer`). The kernel never
        #: touches it; it lives here so every layer holding a sim
        #: reference can reach the same tracer. None = tracing off.
        self.obs = None

    # -- time ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event factories ---------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        return Timeout(self, delay, value=value, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Spawn a new process running ``gen``."""
        return Process(self, gen, name=name)

    def any_of(self, events) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(self._heap, (self._now + delay, priority,
                                    next(self._seq), event))

    def call_at(self, when: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` at absolute simulated time ``when``."""
        if when < self._now:
            raise ValueError(f"call_at({when}) is in the past (now={self._now})")
        ev = self.timeout(when - self._now)
        ev.callbacks.append(lambda _e: fn())
        return ev

    def call_in(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` simulated seconds."""
        ev = self.timeout(delay)
        ev.callbacks.append(lambda _e: fn())
        return ev

    # -- execution -----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        while self._heap and self._heap[0][3].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process one event. Raises IndexError when the calendar is empty."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if event.cancelled:
            return
        self._now = when
        if self.trace.enabled:
            self.trace.record("event", when, event.name or type(event).__name__)
        event._process()
        if event._exc is not None and not event._defused:
            raise event._exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the calendar empties, ``until`` time passes, or the
        given event triggers (returning its value)."""
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if not stop_event.processed:
                assert stop_event.callbacks is not None
                stop_event.callbacks.append(self._stop_on_event)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"until={horizon} is in the past")
            sentinel = Event(self, name="run-until")
            sentinel._value = None
            self._schedule(sentinel, horizon - self._now, priority=LOW)
            sentinel.callbacks.append(self._stop_on_event)
            stop_event = sentinel

        try:
            while self._heap:
                self.step()
            # Calendar drained. Running past a time horizon is normal
            # (the workload simply ended early); draining while waiting
            # for a specific event is a deadlock in the model.
            if (isinstance(until, Event) and stop_event is not None
                    and not stop_event.triggered):
                raise RuntimeError(
                    "simulation ran out of events before the awaited "
                    f"event {until!r} triggered (deadlock?)")
        except StopSimulation:
            pass

        if isinstance(until, Event):
            return until.value if until.triggered else None
        return None

    @staticmethod
    def _stop_on_event(_event: Event) -> None:
        raise StopSimulation()
