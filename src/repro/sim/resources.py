"""Shared resources and queues for simulation processes.

:class:`Resource`
    A counted resource (e.g. QAT computation engines). Processes yield
    :meth:`Resource.request` to acquire a slot and call
    :meth:`Resource.release` when done. FIFO granting order.

:class:`Store`
    An unbounded-or-bounded FIFO item queue (e.g. hardware rings,
    notification queues). ``put`` blocks when full, ``get`` blocks when
    empty.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with FIFO request granting."""

    def __init__(self, sim: "Simulator", capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> int:
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        while self._waiters and self._waiters[0].cancelled:
            self._waiters.popleft()
        ev = Event(self.sim, name=f"{self.name}-req")
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            ev.succeed()
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Release one previously granted slot."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        # Hand the slot directly to the next non-cancelled waiter.
        while self._waiters:
            nxt = self._waiters.popleft()
            if not nxt.cancelled:
                nxt.succeed()
                return
        self._in_use -= 1


class Store:
    """FIFO item queue with optional capacity bound."""

    def __init__(self, sim: "Simulator", capacity: Optional[int] = None,
                 name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be >= 1 or None")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item) pairs

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full.

        This models hardware ring submission: the caller sees the
        failure immediately and must retry later.
        """
        if self.is_full:
            return False
        self._items.append(item)
        self._wake_getter()
        return True

    def put(self, item: Any) -> Event:
        """Blocking put; the returned event fires once the item is stored."""
        ev = Event(self.sim, name=f"{self.name}-put")
        if not self.is_full and not self._putters:
            self._items.append(item)
            ev.succeed()
            self._wake_getter()
        else:
            self._putters.append((ev, item))
        return ev

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_putter()
        return item

    def get(self) -> Event:
        """Blocking get; the event's value is the retrieved item."""
        ev = Event(self.sim, name=f"{self.name}-get")
        if self._items and not self._getters:
            ev.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(ev)
        return ev

    def drain(self) -> list:
        """Remove and return all currently queued items."""
        items = list(self._items)
        self._items.clear()
        while self._putters and not self.is_full:
            self._admit_putter()
        return items

    # -- internal ----------------------------------------------------------

    def _wake_getter(self) -> None:
        while self._getters and self._items:
            g = self._getters.popleft()
            if g.cancelled:
                continue
            g.succeed(self._items.popleft())
            self._admit_putter()

    def _admit_putter(self) -> None:
        while self._putters and not self.is_full:
            p, item = self._putters.popleft()
            if p.cancelled:
                continue
            self._items.append(item)
            p.succeed()
            break
