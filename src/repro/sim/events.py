"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in simulated time.
Processes (see :mod:`repro.sim.process`) suspend themselves by yielding an
event and are resumed when the event is *processed* by the kernel.

Lifecycle::

    pending --(succeed/fail)--> triggered --(kernel step)--> processed

Events may be cancelled while pending; a cancelled event is never
scheduled and its callbacks never run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .kernel import Simulator

__all__ = [
    "Event",
    "Timeout",
    "Condition",
    "AnyOf",
    "AllOf",
    "EventCancelled",
    "UNSET",
]


class EventCancelled(RuntimeError):
    """Raised when waiting on an event that was cancelled."""


class _Unset:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<UNSET>"


#: Sentinel for "no value yet".
UNSET = _Unset()


class Event:
    """A one-shot simulation event.

    Parameters
    ----------
    sim:
        Owning simulator.
    name:
        Optional label used in traces and ``repr``.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_exc", "_scheduled",
                 "_cancelled", "_defused")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = UNSET
        self._exc: Optional[BaseException] = None
        self._scheduled = False
        self._cancelled = False
        # A failed event whose exception was delivered somewhere.  An
        # undefused failure is re-raised by Simulator.run() so errors in
        # detached processes cannot pass silently.
        self._defused = False

    # -- state ---------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not UNSET or self._exc is not None

    @property
    def processed(self) -> bool:
        """True once the kernel has run the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exc is None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def value(self) -> Any:
        """The event's value; raises if the event failed or is pending."""
        if self._exc is not None:
            raise self._exc
        if self._value is UNSET:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exc

    # -- triggering ----------------------------------------------------

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if self._cancelled:
            raise RuntimeError(f"{self!r} was cancelled")
        self._value = value
        self.sim._schedule(self, delay)
        self._scheduled = True
        return self

    def fail(self, exc: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self.triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._exc = exc
        self._value = None
        self.sim._schedule(self, delay)
        self._scheduled = True
        return self

    def cancel(self) -> None:
        """Cancel a pending event; its callbacks will never run."""
        if self.processed:
            raise RuntimeError(f"cannot cancel processed event {self!r}")
        self._cancelled = True

    def defuse(self) -> None:
        """Mark a failed event's exception as handled."""
        self._defused = True

    # -- kernel hook ----------------------------------------------------

    def _process(self) -> None:
        """Run callbacks. Called exactly once by the kernel."""
        callbacks, self.callbacks = self.callbacks, None
        if self._cancelled:
            return
        assert callbacks is not None
        for cb in callbacks:
            cb(self)

    # -- composition -----------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __repr__(self) -> str:
        state = ("processed" if self.processed else
                 "cancelled" if self._cancelled else
                 "triggered" if self.triggered else "pending")
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim, name=name)
        self.delay = delay
        self._value = value
        self.sim._schedule(self, delay)
        self._scheduled = True


class Condition(Event):
    """Waits for a combination of events.

    The condition's value is a dict mapping each *triggered* child event
    to its value at the time the condition fired.
    """

    __slots__ = ("events", "_count", "_needed")

    def __init__(self, sim: "Simulator", events: Iterable[Event],
                 needed: int) -> None:
        super().__init__(sim)
        self.events: List[Event] = list(events)
        if needed < 0 or needed > len(self.events):
            raise ValueError("needed out of range")
        self._count = 0
        self._needed = needed
        if not self.events or needed == 0:
            self.succeed({})
            return
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("events from different simulators")
            if ev.processed:
                self._on_child(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            assert ev.exception is not None
            ev.defuse()
            self.fail(ev.exception)
            return
        self._count += 1
        if self._count >= self._needed:
            self.succeed({e: e._value for e in self.events if e.ok and e.triggered})


class AnyOf(Condition):
    """Fires when any one of the child events fires."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        events = list(events)
        super().__init__(sim, events, needed=min(1, len(events)))


class AllOf(Condition):
    """Fires when all child events have fired."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        events = list(events)
        super().__init__(sim, events, needed=len(events))
