"""Lightweight event tracing for debugging and analysis.

Disabled tracers are free: the kernel checks ``tracer.enabled`` before
formatting anything.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Tracer", "TraceRecord"]

TraceRecord = Tuple[str, float, Tuple[Any, ...]]


class Tracer:
    """Collects ``(kind, time, payload)`` records.

    Parameters
    ----------
    enabled:
        When False, :meth:`record` is a no-op.
    sink:
        Optional callable invoked per record (e.g. ``print``); records
        are also kept in :attr:`records` unless ``keep`` is False.
    """

    def __init__(self, enabled: bool = True, keep: bool = True,
                 sink: Optional[Callable[[TraceRecord], None]] = None) -> None:
        self.enabled = enabled
        self.keep = keep
        self.sink = sink
        self.records: List[TraceRecord] = []

    def record(self, kind: str, when: float, *payload: Any) -> None:
        if not self.enabled:
            return
        rec: TraceRecord = (kind, when, payload)
        if self.keep:
            self.records.append(rec)
        if self.sink is not None:
            self.sink(rec)

    def of_kind(self, kind: str) -> List[TraceRecord]:
        return [r for r in self.records if r[0] == kind]

    def clear(self) -> None:
        self.records.clear()
