"""Network topology: machines, back-to-back NIC links, TCP setup.

The paper's testbed connects two client servers to the tested server
back-to-back via 40 GbE NICs; each machine pair here gets a dedicated
link pair with that latency/bandwidth.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Generator, Optional, Tuple

from .link import Link
from .pollable import Pollable
from .socket_sim import SimSocket, socket_pair

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = ["Network", "Listener", "TCP_HANDSHAKE_BYTES"]

#: Wire size of SYN / SYN-ACK segments.
TCP_HANDSHAKE_BYTES = 60


class Listener(Pollable):
    """A listening socket with an accept queue."""

    def __init__(self, sim: "Simulator", addr: str) -> None:
        super().__init__()
        self.sim = sim
        self.addr = addr
        self._backlog: Deque[SimSocket] = deque()
        self.accepted = 0

    def _enqueue(self, server_sock: SimSocket) -> None:
        self._backlog.append(server_sock)
        self._mark_readable()

    def accept(self) -> Optional[SimSocket]:
        """Non-blocking accept; None when the backlog is empty."""
        if not self._backlog:
            return None
        sock = self._backlog.popleft()
        if not self._backlog:
            self._clear_readable()
        self.accepted += 1
        return sock

    @property
    def backlog(self) -> int:
        return len(self._backlog)


class Network:
    """Machines and the links between them."""

    def __init__(self, sim: "Simulator", latency: float = 12.5e-6,
                 bandwidth_bps: float = 40e9) -> None:
        self.sim = sim
        self.default_latency = latency
        self.default_bandwidth = bandwidth_bps
        self._links: Dict[Tuple[str, str], Link] = {}
        self._listeners: Dict[str, Listener] = {}
        self.connections_established = 0

    # -- links ------------------------------------------------------------

    def link(self, src: str, dst: str) -> Link:
        """The unidirectional link from machine ``src`` to ``dst``
        (created on first use — back-to-back NIC pair per machine pair)."""
        key = (src, dst)
        lnk = self._links.get(key)
        if lnk is None:
            lnk = Link(self.sim, self.default_latency,
                       self.default_bandwidth, name=f"{src}->{dst}")
            self._links[key] = lnk
        return lnk

    # -- TCP ------------------------------------------------------------------

    def bind(self, addr: str) -> Listener:
        if addr in self._listeners:
            raise ValueError(f"address {addr!r} already bound")
        listener = Listener(self.sim, addr)
        self._listeners[addr] = listener
        return listener

    def lookup(self, addr: str) -> Listener:
        try:
            return self._listeners[addr]
        except KeyError:
            raise ConnectionRefusedError(f"nothing bound at {addr!r}") \
                from None

    def connect(self, client_machine: str, addr: str,
                server_machine: str = "server",
                label: str = "") -> Generator:
        """TCP connection setup from a client process.

        Use as ``sock = yield from net.connect("client0", "https")``.
        Costs one RTT (SYN / SYN-ACK); the server side lands in the
        listener's accept queue when the SYN arrives.
        """
        listener = self.lookup(addr)
        c2s = self.link(client_machine, server_machine)
        s2c = self.link(server_machine, client_machine)
        csock, ssock = socket_pair(self.sim, c2s, s2c,
                                   label=label or f"{client_machine}->{addr}")
        # SYN reaches the server: connection becomes acceptable there.
        syn = c2s.transfer(TCP_HANDSHAKE_BYTES)
        syn.callbacks.append(lambda _ev: listener._enqueue(ssock))
        # SYN-ACK back to the client completes the client side.
        yield syn
        yield s2c.transfer(TCP_HANDSHAKE_BYTES)
        self.connections_established += 1
        return csock
