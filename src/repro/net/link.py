"""Unidirectional network links with latency and shared bandwidth.

A link is a FIFO byte pipe: each transfer occupies the wire for
``bytes / bandwidth`` and arrives ``latency`` later. Queueing delay
emerges naturally when offered load approaches the wire rate — this is
what caps Figure 10 near the 40 GbE line rate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = ["Link"]


class Link:
    """One direction of a network path."""

    def __init__(self, sim: "Simulator", latency: float = 12.5e-6,
                 bandwidth_bps: float = 40e9, name: str = "") -> None:
        if latency < 0 or bandwidth_bps <= 0:
            raise ValueError("invalid link parameters")
        self.sim = sim
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.name = name
        self._wire_free_at = 0.0
        self.bytes_carried = 0

    def transfer(self, nbytes: int) -> Event:
        """Schedule a transfer; the returned event fires at delivery.

        Models store-and-forward: serialization on the wire (FIFO,
        shared across all flows) plus propagation latency.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        now = self.sim.now
        tx_time = (nbytes * 8) / self.bandwidth_bps
        start = max(now, self._wire_free_at)
        self._wire_free_at = start + tx_time
        self.bytes_carried += nbytes
        delivery_delay = (start - now) + tx_time + self.latency
        return self.sim.timeout(delivery_delay, name=f"{self.name}-deliver")

    @property
    def queue_delay(self) -> float:
        """Current backlog delay a new transfer would see."""
        return max(0.0, self._wire_free_at - self.sim.now)
