"""Event-based I/O multiplexing (the epoll of the simulated kernel).

``Epoll.wait`` is the blocking point of the event loop (paper section
2.2). File descriptors live in the kernel, so registering interest and
waking up cross the user/kernel boundary — the cost the kernel-bypass
notification scheme avoids for async crypto events (section 3.4).
CPU costs are charged by the caller through the provided core.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Generator, List, Optional

from .pollable import Pollable

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = ["Epoll", "NotifyFd", "EPOLL_WAIT_BASE_COST", "EPOLL_CTL_COST",
           "EPOLL_PER_EVENT_COST", "NOTIFY_FD_WRITE_COST",
           "NOTIFY_FD_READ_COST"]

#: Kernel work inside one epoll_wait call (beyond the mode switch).
EPOLL_WAIT_BASE_COST = 1.0e-6
#: Kernel work per readiness event reported.
EPOLL_PER_EVENT_COST = 0.2e-6
#: epoll_ctl(ADD/DEL) syscall work.
EPOLL_CTL_COST = 0.9e-6
#: eventfd write / read syscall work (FD-based async notification).
NOTIFY_FD_WRITE_COST = 0.7e-6
NOTIFY_FD_READ_COST = 0.7e-6


class Epoll:
    """A simulated epoll instance."""

    def __init__(self, sim: "Simulator", name: str = "epoll") -> None:
        self.sim = sim
        self.name = name
        # Insertion-ordered (dict-as-set): readiness reporting must
        # not depend on object hashes, or runs lose determinism.
        self._watched: Dict[Pollable, None] = {}
        self._waiter = None  # pending wait event, if a process is blocked
        self.wait_calls = 0
        self.wakeups = 0

    # -- registration (epoll_ctl) ------------------------------------------

    def register(self, p: Pollable) -> None:
        self._watched[p] = None
        p._watchers[self] = None

    def unregister(self, p: Pollable) -> None:
        self._watched.pop(p, None)
        p._watchers.pop(self, None)

    def is_registered(self, p: Pollable) -> bool:
        return p in self._watched

    # -- waiting ------------------------------------------------------------

    def _ready_list(self) -> List[Pollable]:
        return [p for p in self._watched if p.readable]

    def _notify(self, _p: Pollable) -> None:
        if self._waiter is not None and not self._waiter.triggered:
            self._waiter.succeed()
        self._waiter = None

    def wait(self, core, owner: object = None,
             timeout: Optional[float] = None) -> Generator:
        """Block until at least one watched fd is ready or ``timeout``
        elapses. Charges the mode switch + kernel work to ``core``.

        Use as ``ready = yield from epoll.wait(core, ...)``.
        """
        self.wait_calls += 1
        yield from core.kernel_crossing(extra=EPOLL_WAIT_BASE_COST)
        ready = self._ready_list()
        if not ready:
            waiter = self.sim.event(name=f"{self.name}-wait")
            self._waiter = waiter
            if timeout is not None:
                timer = self.sim.timeout(timeout)
                yield self.sim.any_of([waiter, timer])
                if not timer.processed and not timer.triggered:
                    timer.cancel()
                if self._waiter is waiter:
                    self._waiter = None
            else:
                yield waiter
            # Waking up is the return from the blocked syscall.
            ready = self._ready_list()
        self.wakeups += 1
        if ready:
            yield from core.consume(EPOLL_PER_EVENT_COST * len(ready),
                                    owner=owner)
        return ready


class NotifyFd(Pollable):
    """An eventfd-like notification descriptor.

    The FD-based async notification scheme allocates one of these per
    TLS connection (shared across its jobs — the optimization in paper
    section 4.4) and writes to it from the response callback.
    Both ends pay syscalls; that is exactly the overhead the
    kernel-bypass scheme removes.
    """

    def __init__(self, sim: "Simulator", label: str = "asyncfd") -> None:
        super().__init__()
        self.sim = sim
        self.label = label
        self._count = 0
        self.writes = 0
        self.reads = 0

    def write_event(self) -> None:
        """Signal one event (the caller charges NOTIFY_FD_WRITE_COST)."""
        self._count += 1
        self.writes += 1
        self._mark_readable()

    def read_events(self) -> int:
        """Consume all pending events (caller charges read cost)."""
        n = self._count
        self._count = 0
        self.reads += 1
        self._clear_readable()
        return n
