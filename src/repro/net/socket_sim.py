"""Simulated non-blocking sockets.

Sockets exchange discrete, ordered messages (each message models the
TCP segments carrying one TLS record or application chunk); framing is
preserved by construction. ``send`` is fire-and-forget onto the link;
``recv`` is non-blocking and returns ``None`` when it would block —
exactly the semantics the event-driven architecture needs (paper
section 2.2).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from .link import Link
from .pollable import Pollable

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator

__all__ = ["SimSocket", "socket_pair", "SocketClosed"]


class SocketClosed(ConnectionError):
    """Raised when sending on a closed socket."""


class SimSocket(Pollable):
    """One end of a bidirectional connection."""

    def __init__(self, sim: "Simulator", out_link: Link,
                 label: str = "") -> None:
        super().__init__()
        self.sim = sim
        self.out_link = out_link
        self.label = label
        self.peer: Optional["SimSocket"] = None
        self._inbox: Deque[Any] = deque()
        self._closed = False
        self._peer_closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- sending -----------------------------------------------------------

    def send(self, message: Any, nbytes: Optional[int] = None) -> int:
        """Queue ``message`` for delivery to the peer.

        ``nbytes`` is the wire size; defaults to ``len(message)``.
        """
        if self._closed:
            raise SocketClosed(f"send on closed socket {self.label}")
        if self.peer is None:
            raise SocketClosed("socket is not connected")
        size = len(message) if nbytes is None else nbytes
        self.bytes_sent += size
        delivery = self.out_link.transfer(size)
        peer = self.peer
        delivery.callbacks.append(
            lambda _ev: peer._deliver(message, size))
        return size

    def _deliver(self, message: Any, size: int) -> None:
        if self._closed:
            return  # arriving after local close: dropped
        self._inbox.append(message)
        self.bytes_received += size
        self._mark_readable()

    # -- receiving ------------------------------------------------------------

    def recv(self) -> Optional[Any]:
        """Non-blocking receive: the next message, or None when empty.

        After the peer has closed and the inbox drained, returns the
        empty bytes object (EOF), mirroring BSD sockets.
        """
        if self._inbox:
            msg = self._inbox.popleft()
            if not self._inbox and not self._peer_closed:
                self._clear_readable()
            return msg
        if self._peer_closed:
            return b""
        return None

    @property
    def pending(self) -> int:
        return len(self._inbox)

    # -- teardown --------------------------------------------------------------

    def close(self) -> None:
        """Close this end; the peer sees EOF after the link latency."""
        if self._closed:
            return
        self._closed = True
        self._clear_readable()
        if self.peer is not None:
            fin = self.out_link.transfer(40)  # FIN+ACK sized
            peer = self.peer
            fin.callbacks.append(lambda _ev: peer._on_peer_close())

    def _on_peer_close(self) -> None:
        self._peer_closed = True
        self._mark_readable()  # wake readers so they observe EOF

    @property
    def closed(self) -> bool:
        return self._closed


def socket_pair(sim: "Simulator", a_to_b: Link, b_to_a: Link,
                label: str = "conn") -> tuple:
    """Create a connected socket pair over the given links."""
    a = SimSocket(sim, a_to_b, label=f"{label}-a")
    b = SimSocket(sim, b_to_a, label=f"{label}-b")
    a.peer, b.peer = b, a
    return a, b
