"""Pollable objects: the file-descriptor abstraction of the simulated
kernel. Sockets, listeners and notification FDs are pollable; the
epoll model watches them."""

from __future__ import annotations

from itertools import count
from typing import Dict

__all__ = ["Pollable", "wait_readable"]

_fd_counter = count(3)  # 0-2 are "stdio"


class Pollable:
    """Base class for things an epoll can watch."""

    def __init__(self) -> None:
        self.fd = next(_fd_counter)
        self._readable = False
        # Insertion-ordered (dict-as-set) for deterministic wakeups.
        self._watchers: Dict[object, None] = {}  # Epolls / one-shot waiters

    @property
    def readable(self) -> bool:
        return self._readable

    def _mark_readable(self) -> None:
        if not self._readable:
            self._readable = True
            for ep in list(self._watchers):
                ep._notify(self)
        else:
            # Already readable; still nudge watchers in case a waiter
            # registered after the previous notification.
            for ep in list(self._watchers):
                ep._notify(self)

    def _clear_readable(self) -> None:
        self._readable = False


def wait_readable(sim, pollable: Pollable):
    """Return an event that fires when ``pollable`` becomes readable.

    A lightweight one-shot watcher for client processes (which do not
    model kernel/epoll costs — client machines are not the system
    under test).
    """
    event = sim.event(name=f"readable-fd{pollable.fd}")
    if pollable.readable:
        event.succeed()
        return event

    class _Waiter:
        def _notify(self, p):
            pollable._watchers.pop(self, None)
            if not event.triggered:
                event.succeed()

    pollable._watchers[_Waiter()] = None
    return event
