"""Simulated network substrate: links, sockets, epoll, TCP setup."""

from .epoll_sim import (EPOLL_CTL_COST, EPOLL_PER_EVENT_COST,
                        EPOLL_WAIT_BASE_COST, NOTIFY_FD_READ_COST,
                        NOTIFY_FD_WRITE_COST, Epoll, NotifyFd)
from .link import Link
from .network import TCP_HANDSHAKE_BYTES, Listener, Network
from .pollable import Pollable, wait_readable
from .socket_sim import SimSocket, SocketClosed, socket_pair

__all__ = [
    "Link", "SimSocket", "SocketClosed", "socket_pair", "Pollable",
    "Epoll", "NotifyFd", "Network", "Listener", "TCP_HANDSHAKE_BYTES",
    "wait_readable",
    "EPOLL_WAIT_BASE_COST", "EPOLL_PER_EVENT_COST", "EPOLL_CTL_COST",
    "NOTIFY_FD_WRITE_COST", "NOTIFY_FD_READ_COST",
]
