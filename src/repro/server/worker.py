"""The event-driven worker process (the paper's modified Nginx worker).

One worker = one event loop on one dedicated core, one QAT instance
(when offloading), one stub_status, and — depending on configuration —
a timer-based polling thread or the integrated heuristic polling
scheme, with FD-based or kernel-bypass async event notification.

The four phases of the QTLS framework map onto this file as:

1. *pre-processing* — a handler drives the SSL layer until
   ``WANT_ASYNC``: the offload job pauses, the connection enters the
   TLS-ASYNC state and the loop moves on to other connections;
2. *QAT response retrieval* — :class:`HeuristicPoller` checks fire
   after every handler invocation (or the timer thread polls);
3. *async event notification* — the response callback pushes the async
   handler onto the :class:`AsyncEventQueue` (kernel-bypass) or writes
   the connection's notification FD (FD mode);
4. *post-processing* — the worker pops the queue at the end of the
   loop (or sees the FD readable in epoll) and reschedules the saved
   handler, which resumes the paused job.

The loop itself is built on :mod:`repro.server.reactor`: every wake
mechanism (pollables, pending async events, due retries, the spin
timeout, the timer thread, the interrupt retriever, the failover and
watchdog sweeps, drain passes) is a registered
:class:`~repro.server.reactor.EventSource`; one arbiter merges their
deadlines into the epoll timeout and the end-of-pass pipeline runs the
stage sources in registration order. The worker keeps the protocol
handlers; the reactor owns scheduling.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, List, Optional, Tuple

from ..core.costmodel import CostModel
from ..cpu.core import Core
from ..offload.engine import AsyncOffloadEngine
from ..net.epoll_sim import (EPOLL_CTL_COST, NOTIFY_FD_READ_COST, Epoll,
                             NotifyFd)
from ..net.network import Listener
from ..net.socket_sim import SimSocket
from ..sim.process import Interrupt
from ..ssl.connection import SslConnection
from ..ssl.status import SslStatus
from ..tls.actions import TlsAlert
from ..tls.record import TlsRecord
from .config import ServerConfig
from .connection import ConnState, ServerConnection
from .http import parse_request, response_body
from .notify.async_queue import AsyncEventQueue
from .polling.heuristic import HeuristicPoller
from .polling.timer_thread import TimerPollingThread
from .reactor import (SPIN_TIMEOUT, AdmissionSource, AsyncQueueSource,
                      BatchFlushSource, ConnSource, DrainPassSource,
                      FailoverSource, HeuristicSource, InterruptSource,
                      ListenerSource, NotifyFdSource, Reactor, RetrySource,
                      TimerPollSource, WatchdogSource)
from .stub_status import StubStatus

__all__ = ["Worker", "WorkerMetrics", "SPIN_TIMEOUT"]


class WorkerMetrics:
    """Counters the bench harness samples."""

    def __init__(self) -> None:
        self.handshakes_full = 0
        self.handshakes_resumed = 0
        self.requests_served = 0
        self.bytes_sent = 0
        self.connections_closed = 0
        self.alerts = 0

    def snapshot(self) -> dict:
        return dict(self.__dict__)


class Worker:
    """One Nginx-like worker process."""

    def __init__(self, sim, worker_id: int, core: Core, listener: Listener,
                 ssl_ctx_factory, config: ServerConfig,
                 cost_model: CostModel, generation: int = 0) -> None:
        self.sim = sim
        self.worker_id = worker_id
        self.core = core
        self.listener = listener
        self.config = config
        self.cm = cost_model
        #: Config generation this worker was spawned under (bumped by
        #: each graceful reload; see repro.server.lifecycle).
        self.generation = generation
        self.ssl_ctx = ssl_ctx_factory(self)
        self.engine = self.ssl_ctx.engine

        self.epoll = Epoll(sim, name=f"w{worker_id}-epoll")
        self.epoll.register(listener)
        self.stub_status = StubStatus()
        self.async_queue = AsyncEventQueue()
        #: (conn, async_token) pairs: stale entries (token mismatch)
        #: are dropped instead of re-resuming an already-resumed conn.
        self.retries: Deque[Tuple[ServerConnection, int]] = deque()
        self.metrics = WorkerMetrics()

        self.conns: Dict[SimSocket, ServerConnection] = {}
        self.fd_conns: Dict[NotifyFd, ServerConnection] = {}
        self._conn_seq = 0
        self.running = True
        #: Graceful drain (reload): stopped accepting, serving only the
        #: connections already open; exits once they finish.
        self.draining = False
        #: The event-loop process, so the supervisor can watch for exit
        #: and interrupt it on a crash.
        self.proc = None

        # Response retrieval scheme (only meaningful with async offload).
        self.poller: Optional[HeuristicPoller] = None
        self.timer_thread: Optional[TimerPollingThread] = None
        self.interrupt_retriever = None
        #: Wakes the loop out of a blocked epoll_wait when responses
        #: are dispatched OUTSIDE the loop (timer thread / interrupts)
        #: while queue-mode notifications would otherwise sit unseen.
        self.wake_fd: Optional[NotifyFd] = None
        #: Submission batching active: flush the engine's coalescing
        #: queue at the end of every event-loop pass.
        self._batching = False
        #: Engine queueing active (admission cap, non-fifo arbitration
        #: or per-connection budgets): admit queued ops at the end of
        #: every event-loop pass (into capacity completions freed).
        self._admission_on = False
        eng_cfg = config.ssl_engine
        if config.async_offload and isinstance(self.engine, AsyncOffloadEngine):
            self._batching = self.engine.batch_size > 1
            self._admission_on = self.engine.queueing_enabled
            out_of_loop = (eng_cfg.qat_notify_mode == "interrupt"
                           or eng_cfg.qat_poll_mode == "timer"
                           # The watchdog also dispatches outside the
                           # loop (fallback deliveries while epoll is
                           # blocked).
                           or eng_cfg.qat_watchdog_interval > 0)
            if out_of_loop and config.async_notify_mode == "queue":
                self.wake_fd = NotifyFd(sim, label=f"w{worker_id}-wake")
                self.epoll.register(self.wake_fd)
            wake = (self.wake_fd.write_event if self.wake_fd is not None
                    else None)
            if eng_cfg.qat_notify_mode == "interrupt":
                from .polling.interrupt_mode import InterruptRetriever
                self.interrupt_retriever = InterruptRetriever(
                    sim, self.engine, name=f"w{worker_id}-irq", wake=wake)
                self.interrupt_retriever.arm()
            elif eng_cfg.qat_poll_mode == "heuristic":
                self.poller = HeuristicPoller(
                    self.engine, self.stub_status,
                    asym_threshold=eng_cfg.qat_heuristic_poll_asym_threshold,
                    sym_threshold=eng_cfg.qat_heuristic_poll_sym_threshold)
            else:
                self.timer_thread = TimerPollingThread(
                    sim, self.engine,
                    interval=eng_cfg.qat_timer_poll_interval,
                    name=f"w{worker_id}-poller", wake=wake)

        # The reactor: registration order is dispatch order, deadline
        # attribution order, end-of-pass stage order and teardown
        # order. Pollable routing (listener -> notify FDs -> sockets)
        # and the stage pipeline (async queue -> retries -> heuristic
        # -> batch flush -> admission -> drain) replicate the
        # historical hand-threaded loop exactly.
        self.reactor = Reactor(sim, self)
        reg = self.reactor.register
        reg(ListenerSource(self))
        reg(NotifyFdSource(self))
        reg(ConnSource(self))
        reg(AsyncQueueSource(self))
        reg(RetrySource(self))
        self._heuristic_source: Optional[HeuristicSource] = None
        if self.interrupt_retriever is not None:
            reg(InterruptSource(self, self.interrupt_retriever))
        elif self.poller is not None:
            self._heuristic_source = reg(HeuristicSource(self, self.poller))
        elif self.timer_thread is not None:
            reg(TimerPollSource(self, self.timer_thread))
        if self._batching:
            reg(BatchFlushSource(self))
        if self._admission_on:
            reg(AdmissionSource(self))
        reg(DrainPassSource(self))
        # The failover sweep backs up the *in-loop* retrieval scheme:
        # timer and interrupt retrieval run out of loop and cannot
        # stall below a poll threshold, so only heuristic mode
        # registers it (FailoverSource itself is mode-generic).
        if self.poller is not None and eng_cfg.qat_failover_timer > 0:
            reg(FailoverSource(self, interval=eng_cfg.qat_failover_timer,
                               polls_fn=lambda: self.poller.polls))
        if (config.async_offload
                and isinstance(self.engine, AsyncOffloadEngine)
                and eng_cfg.qat_watchdog_interval > 0):
            reg(WatchdogSource(
                self, interval=eng_cfg.qat_watchdog_interval))

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self.proc = self.sim.process(
            self._event_loop(),
            name=f"worker-{self.worker_id}.g{self.generation}")
        self.reactor.start()

    def stop(self) -> None:
        self.running = False
        self.reactor.shutdown()
        self._refresh_degradation()

    def begin_drain(self) -> None:
        """nginx SIGHUP: hand the listen socket to the new generation
        and stop accepting. Connections already open keep being served
        until they finish (or the supervisor's drain deadline
        force-aborts them); the event loop exits on its own once
        :attr:`drained`."""
        if self.draining:
            return
        self.draining = True
        if self.epoll.is_registered(self.listener):
            self.epoll.unregister(self.listener)

    @property
    def drained(self) -> bool:
        """No connections left and nothing inside the offload engine."""
        if self.conns:
            return False
        if isinstance(self.engine, AsyncOffloadEngine):
            return self.engine.idle
        return True

    def kill(self) -> None:
        """Crash (or drain-deadline force-abort) teardown: the process
        dies mid-pass, its sockets close (clients see EOF) and every
        open offload op is aborted out of the engine tables.
        Synchronous — a dead process consumes no core time."""
        self.running = False
        # Teardown by deregistration: every source (timer thread,
        # interrupt retriever, sweeps) stops through the reactor.
        self.reactor.shutdown()
        if self.proc is not None and self.proc.is_alive:
            self.proc.interrupt("worker killed")
        for conn in list(self.conns.values()):
            was_idle = conn.stub_idle
            conn.stub_idle = False
            conn.state = ConnState.CLOSED
            conn.ssl.abort_job()
            if not conn.sock.closed:
                conn.sock.close()
            # A conn interrupted between table insertion and the
            # accept-side stub update was never counted: closing it on
            # the books would underflow the alive count.
            if conn.stub_open:
                conn.stub_open = False
                self.stub_status.on_close(was_idle=was_idle)
                self.metrics.connections_closed += 1
        self.conns.clear()
        self.fd_conns.clear()
        self.retries.clear()
        while self.async_queue:
            self.async_queue.pop()
        if isinstance(self.engine, AsyncOffloadEngine):
            self.engine.abort_all()
        # Detach the dead epoll from everything it watched, so sockets
        # and the (possibly reused) listener stop notifying it.
        for p in list(self.epoll._watched):
            self.epoll.unregister(p)
        self._refresh_degradation()

    # -- the main event loop (paper section 2.2 / 3.4) -----------------------------

    def _event_loop(self) -> Generator:
        try:
            while self.running:
                timeout = self.reactor.next_timeout(self.sim.now)
                ready = yield from self.epoll.wait(self.core, owner=self,
                                                   timeout=timeout)
                for p in ready:
                    yield from self.core.consume(
                        self.cm.event_dispatch_cost, owner=self)
                    yield from self.reactor.dispatch(p, owner=self)
                    yield from self._heuristic_check()
                # Post-processing phase: the staged end-of-pass
                # pipeline (async-queue drain -> retries -> heuristic
                # check -> batch flush -> admission drain -> drain
                # pass), in source registration order.
                yield from self.reactor.end_of_pass(owner=self)
        except Interrupt:
            # Killed by the supervision layer (crash injection or a
            # drain-deadline force-abort); Worker.kill() already tore
            # the tables down.
            return

    def _drain_pass(self) -> Generator:
        """One end-of-pass drain step: ops still queued inside the
        engine (coalescing or admission queue) fail over to software so
        their connections can finish instead of hanging behind an
        accelerator path nobody will keep feeding. The failover
        deliveries notify the jobs' wait contexts, so the next pass
        resumes the connections through the normal async plumbing."""
        if (isinstance(self.engine, AsyncOffloadEngine)
                and (self.engine.queued_batch_ops
                     or self.engine.admission_queued)):
            yield from self.engine.drain_queued(owner=self)
        # The heuristic poller's thresholds are tuned for steady-state
        # throughput; a draining worker's in-flight population dribbles
        # below them and would sit waiting on deadline failovers.
        # Latency is all that matters now — poll every pass.
        if self.poller is not None and self.engine.inflight.total > 0:
            yield from self.engine.poll_and_dispatch(owner=self)
        return None

    def _heuristic_check(self) -> Generator:
        """The paper's per-handler heuristic hook: evaluated after
        every dispatched event (a no-op under timer/interrupt
        retrieval, where no heuristic source is registered)."""
        if self._heuristic_source is not None:
            yield from self._heuristic_source.check(owner=self)
        return None

    def status_snapshot(self) -> dict:
        """Consistent stub_status read: refresh the page from the live
        engine ledgers *in the same synchronous step*, then snapshot.

        ``stub_status`` is normally only republished at watchdog ticks
        and shutdown, so a raw ``stub_status.counters()`` read taken
        mid-pass can lag the engine/driver counters that feed
        ``fw_counter_totals()`` — the two disagree transiently even
        though nothing is wrong. Reading through this helper (or
        :meth:`TlsServer.consistent_status_snapshot`) closes that gap:
        there is no yield between the refresh and the read."""
        self._refresh_degradation()
        return self.stub_status.counters()

    def _refresh_degradation(self) -> None:
        """Publish offload-health counters on the stub_status page."""
        self.stub_status.update_reactor(sources=self.reactor.snapshot())
        obs = getattr(self.sim, "obs", None)
        if obs is not None and obs.enabled:
            # Per-source wake/busy timelines, sampled at republish
            # points (watchdog ticks, lifecycle transitions, shutdown)
            # so trace size stays bounded by the republish cadence.
            for name, s in self.reactor.snapshot().items():
                prefix = f"w{self.worker_id}.reactor.{name}"
                obs.util_sample(f"{prefix}.wakes", self.sim.now,
                                s["wakes"] + s["events"])
                obs.util_sample(f"{prefix}.busy", self.sim.now, s["busy"])
        eng = self.engine
        if not isinstance(eng, AsyncOffloadEngine):
            return
        self.stub_status.update_degradation(
            fallback_ops=eng.ops_fallback,
            op_timeouts=eng.op_timeouts,
            open_breakers=eng.open_breakers,
            submit_failures=eng.submit_failures,
            backend=eng.backend.name,
            batches_submitted=eng.batches_submitted,
            batch_ops=eng.batch_ops)
        pool = getattr(eng.backend, "pool", None)
        if pool is not None or eng.admission_limit is not None:
            self.stub_status.update_pool(
                policy=(pool.policy.name if pool is not None else ""),
                leases=(len(pool.leases[eng.backend.worker_id])
                        if pool is not None else 0),
                migrations=(pool.migrations if pool is not None else 0),
                admission_limit=eng.admission_limit or 0,
                admission_queued=eng.admission_queued,
                admission_peak=eng.admission_peak,
                admission_admitted=eng.admission_admitted)
        if getattr(eng, "sched_active", False):
            self.stub_status.update_scheduler(**eng.scheduler.snapshot())
        obs = getattr(self.sim, "obs", None)
        if obs is not None and obs.enabled:
            self.stub_status.update_trace(**obs.snapshot_counts())

    # -- accept path -----------------------------------------------------------------

    def _accept_all(self) -> Generator:
        while True:
            sock = self.listener.accept()
            if sock is None:
                return
            yield from self.core.consume(self.cm.accept_cost, owner=self)
            self._conn_seq += 1
            ssl = SslConnection(self.ssl_ctx, self._conn_seq)
            conn = ServerConnection(self._conn_seq, sock, ssl)
            self.conns[sock] = conn
            yield from self.core.kernel_crossing(extra=EPOLL_CTL_COST)
            self.epoll.register(sock)
            conn.stub_open = True
            self.stub_status.on_accept()

    # -- socket events ------------------------------------------------------------------

    def _socket_event(self, conn: ServerConnection) -> Generator:
        eof = False
        while True:
            msg = conn.sock.recv()
            if msg is None:
                break
            yield from self.core.consume(self.cm.net_rx_fixed, owner=self)
            if isinstance(msg, bytes) and msg == b"":
                eof = True
                break
            if isinstance(msg, TlsRecord):
                conn.pending_records.append(msg)
            else:
                conn.ssl.feed_message(msg)
        if eof:
            conn.eof_pending = True
        if conn.in_async:
            # Event disorder guard (section 4.2): clear and save the
            # read event; restore it when the async event is processed.
            conn.saved_read_pending = True
            return
        # Process any messages that arrived ahead of the FIN (e.g. the
        # client's final Finished flight + immediate close) before
        # honoring the EOF.
        yield from self._run_state_handler(conn)
        if conn.eof_pending and not conn.in_async \
                and conn.state is not ConnState.CLOSED:
            yield from self._teardown(conn)

    def _run_state_handler(self, conn: ServerConnection) -> Generator:
        if conn.state is ConnState.CLOSED:
            return
        if conn.state is ConnState.HANDSHAKE:
            yield from self._handshake_handler(conn)
        else:
            yield from self._io_handler(conn)

    # -- async plumbing -------------------------------------------------------------------

    def _setup_async(self, conn: ServerConnection, handler) -> Generator:
        """Enter TLS-ASYNC and arm the notification channel."""
        conn.enter_async(handler)
        conn.async_since = self.sim.now
        job = conn.ssl.job
        if self.config.async_notify_mode == "queue":
            # SSL_set_async_callback: the response callback will insert
            # the async handler at the tail of the async queue.
            job.wait_ctx.set_callback(self.async_queue.push,
                                      (conn, conn.async_token))
        else:
            if conn.notify_fd is not None and not self.config.share_notify_fd:
                # Per-job FDs (the unoptimized variant): retire the
                # previous job's descriptor.
                self.epoll.unregister(conn.notify_fd)
                self.fd_conns.pop(conn.notify_fd, None)
                yield from self.core.kernel_crossing(extra=EPOLL_CTL_COST)
                conn.notify_fd = None
            if conn.notify_fd is None:
                conn.notify_fd = NotifyFd(self.sim,
                                          label=f"c{conn.conn_id}-async")
                self.fd_conns[conn.notify_fd] = conn
                yield from self.core.kernel_crossing(extra=EPOLL_CTL_COST)
                self.epoll.register(conn.notify_fd)
            job.wait_ctx.set_fd(conn.notify_fd)
        return None

    def _notify_fd_event(self, fd: NotifyFd) -> Generator:
        conn = self.fd_conns.get(fd)
        yield from self.core.kernel_crossing(extra=NOTIFY_FD_READ_COST)
        fd.read_events()
        if conn is not None:
            yield from self._resume_async(conn)
        # The worker wake fd carries no connection: the loop proceeds
        # to drain the async queue.

    def _drain_async_queue(self) -> Generator:
        while self.async_queue:
            conn, token = self.async_queue.pop()
            yield from self.core.consume(self.cm.async_queue_cost,
                                         owner=self)
            if token != conn.async_token:
                continue  # already resumed through another channel
            yield from self._resume_async(conn)
            yield from self._heuristic_check()

    def _process_retries(self) -> Generator:
        now = self.sim.now
        for _ in range(len(self.retries)):
            conn, token = self.retries.popleft()
            if (conn.state is ConnState.CLOSED or not conn.in_async
                    or token != conn.async_token):
                continue
            if conn.retry_not_before > now:
                self.retries.append((conn, token))  # backoff not elapsed
                continue
            yield from self._resume_async(conn)

    def _resume_async(self, conn: ServerConnection) -> Generator:
        """Post-processing: reschedule the saved handler."""
        if conn.state is ConnState.CLOSED or not conn.in_async:
            return  # connection died while the request was in flight
        handler = conn.leave_async()
        yield from handler(conn)
        if (conn.state is not ConnState.CLOSED and conn.saved_read_pending
                and not conn.in_async):
            conn.saved_read_pending = False
            yield from self._run_state_handler(conn)
        if (conn.eof_pending and not conn.in_async
                and conn.state is not ConnState.CLOSED):
            yield from self._teardown(conn)

    def _handle_status(self, conn: ServerConnection, status: SslStatus,
                       handler) -> Generator:
        """Common WANT_ASYNC / WANT_RETRY handling; True if paused."""
        if status is SslStatus.WANT_ASYNC:
            yield from self._setup_async(conn, handler)
            return True
        if status is SslStatus.WANT_RETRY:
            yield from self._setup_async(conn, handler)
            job = conn.ssl.job
            if job is not None and isinstance(self.engine, AsyncOffloadEngine):
                # Back off exponentially under ring-full storms instead
                # of spinning the loop at timeout 0.
                conn.retry_not_before = (
                    self.sim.now
                    + self.engine.submit_backoff(job.submit_attempts))
            self.retries.append((conn, conn.async_token))
            return True
        return False

    # -- handshake handler -----------------------------------------------------------------

    def _handshake_handler(self, conn: ServerConnection) -> Generator:
        try:
            status = yield from conn.ssl.do_handshake(self)
        except TlsAlert as alert:
            self.metrics.alerts += 1
            yield from self._flush_outbox(conn)
            yield from self._send_alert(conn, alert)
            yield from self._teardown(conn)
            return
        yield from self._flush_outbox(conn)
        paused = yield from self._handle_status(conn, status,
                                                self._handshake_handler)
        if paused or status is SslStatus.WANT_READ:
            return
        # OK: established.
        conn.handshake_completed_at = self.sim.now
        if conn.ssl.handshake_result.resumed:
            self.metrics.handshakes_resumed += 1
        else:
            self.metrics.handshakes_full += 1
        self._mark_idle(conn)
        if conn.pending_records:
            yield from self._io_handler(conn)

    # -- request/response handler ------------------------------------------------------------

    def _io_handler(self, conn: ServerConnection) -> Generator:
        try:
            yield from self._io_loop(conn)
        except TlsAlert as alert:
            self.metrics.alerts += 1
            yield from self._send_alert(conn, alert)
            yield from self._teardown(conn)

    def _io_loop(self, conn: ServerConnection) -> Generator:
        while conn.state is not ConnState.CLOSED:
            job = conn.ssl.job
            if job is not None and job.kind == "write":
                status, records = yield from conn.ssl.write(None, self)
                if (yield from self._handle_status(conn, status,
                                                   self._io_handler)):
                    return
                yield from self._send_records(conn, records)
                continue
            if job is not None and job.kind == "read":
                status, payload = yield from conn.ssl.read_record(None, self)
            elif conn.pending_records:
                self._mark_active(conn)
                record = conn.pending_records.popleft()
                status, payload = yield from conn.ssl.read_record(
                    record, self)
            else:
                self._mark_idle(conn)
                return
            if (yield from self._handle_status(conn, status,
                                               self._io_handler)):
                return
            # A full request payload decrypted.
            yield from self.core.consume(self.cm.http_request_cost,
                                         owner=self)
            try:
                request = parse_request(payload)
            except ValueError:
                self.metrics.alerts += 1
                yield from self._teardown(conn)
                return
            conn.current_request = request
            body = response_body(request.size)
            status, records = yield from conn.ssl.write(body, self)
            if (yield from self._handle_status(conn, status,
                                               self._io_handler)):
                return
            yield from self._send_records(conn, records)

    def _send_records(self, conn: ServerConnection,
                      records: List[TlsRecord]) -> Generator:
        for rec in records:
            wire = rec.wire_size()
            yield from self.core.consume(self.cm.net_tx_cost(wire),
                                         owner=self)
            conn.sock.send(rec, nbytes=wire)
            self.metrics.bytes_sent += wire
        conn.requests_served += 1
        self.metrics.requests_served += 1
        conn.current_request = None

    # -- outbox / teardown ----------------------------------------------------------------------

    def _send_alert(self, conn: ServerConnection, alert: TlsAlert
                    ) -> Generator:
        """Fatal alerts go on the wire before closure (RFC 5246 7.2)."""
        from ..tls.messages import Alert
        if conn.sock.closed:
            return
        msg = Alert(description=alert.description.split(":")[0])
        yield from self.core.consume(self.cm.net_tx_cost(msg.wire_size()),
                                     owner=self)
        conn.sock.send(msg, nbytes=msg.wire_size())

    def _flush_outbox(self, conn: ServerConnection) -> Generator:
        for sm in conn.ssl.outbox:
            wire = sm.message.wire_size()
            yield from self.core.consume(self.cm.net_tx_cost(wire),
                                         owner=self)
            if not conn.sock.closed:
                conn.sock.send(sm.message, nbytes=wire)
        conn.ssl.outbox.clear()
        return None

    def _mark_idle(self, conn: ServerConnection) -> None:
        if conn.state is not ConnState.IDLE:
            conn.state = ConnState.IDLE
            conn.stub_idle = True
            self.stub_status.on_idle()

    def _mark_active(self, conn: ServerConnection) -> None:
        if conn.state is ConnState.IDLE:
            conn.stub_idle = False
            self.stub_status.on_active()
            conn.state = ConnState.READING

    def _teardown(self, conn: ServerConnection) -> Generator:
        if conn.state is ConnState.CLOSED:
            return
        conn.state = ConnState.CLOSED
        conn.ssl.abort_job()
        yield from self.core.consume(self.cm.close_cost, owner=self)
        self.epoll.unregister(conn.sock)
        if conn.notify_fd is not None:
            self.epoll.unregister(conn.notify_fd)
            self.fd_conns.pop(conn.notify_fd, None)
        self.conns.pop(conn.sock, None)
        conn.sock.close()
        # Read the idle flag only now: the consume above is a yield
        # point, and a kill() interrupt must still see the flag set so
        # it can balance the stub_status books itself.
        was_idle = conn.stub_idle
        conn.stub_idle = False
        conn.stub_open = False
        self.stub_status.on_close(was_idle=was_idle)
        self.metrics.connections_closed += 1
