"""Master process: provisions cores, listeners, QAT instances and
workers (the paper's deployment shape, section 5.1: N workers on N
dedicated HT cores, one QAT instance per worker, instances spread
evenly over the card's endpoints)."""

from __future__ import annotations

from typing import List, Optional

from ..core.costmodel import CostModel, default_cost_model
from ..cpu.core import CpuTopology
from ..crypto.provider import CryptoProvider
from ..engine.software import SoftwareEngine
from ..net.link import Link
from ..net.network import Network
from ..offload.engine import AsyncOffloadEngine
from ..offload.pool import DynamicPolicy, InstancePool, make_policy
from ..offload.remote import RemoteAcceleratorBackend, RemoteCryptoService
from ..qat.device import QatDevice
from ..qat.driver import QatUserspaceDriver
from ..sim.rng import RngRegistry
from ..ssl.context import SslContext
from ..tls.config import TlsServerConfig
from ..tls.constants import ProtocolVersion
from ..tls.session import SessionCache
from ..tls.suites import get_suite
from .config import ServerConfig
from .lifecycle import WorkerSupervisor
from .worker import Worker

__all__ = ["TlsServer"]


class TlsServer:
    """The whole server machine: master + workers."""

    def __init__(self, sim, net: Network, config: ServerConfig,
                 provider: CryptoProvider, rng: RngRegistry,
                 qat_device: Optional[QatDevice] = None,
                 cost_model: Optional[CostModel] = None,
                 ht_efficiency: float = 1.0) -> None:
        config.validate()
        self.sim = sim
        self.net = net
        self.config = config
        self.provider = provider
        self.cost_model = cost_model or default_cost_model()
        self.qat_device = qat_device
        if config.uses_qat and qat_device is None:
            raise ValueError("QAT offload configured but no device given")
        self._rng = rng

        suites = tuple(get_suite(name) for name in config.suites)
        self._suites = suites
        self._version = (ProtocolVersion.TLS13 if config.tls_version == "1.3"
                         else ProtocolVersion.TLS12)

        # Shared server credentials (one cert, as in the testbed).
        cred_rng = rng.stream("server-credentials")
        self._cred_rsa = None
        self._cred_ecdsa = None
        if any(s.auth == "rsa" for s in suites):
            self._cred_rsa = provider.make_rsa_credentials(
                config.rsa_bits, cred_rng)
        if any(s.auth == "ecdsa" for s in suites):
            self._cred_ecdsa = provider.make_ecdsa_credentials(
                config.curves[0], cred_rng)

        self.session_cache = (SessionCache(sim,
                                           lifetime=config.session_lifetime)
                              if config.session_cache_enabled else None)
        # One STEK shared by all workers (as deployments rotate and
        # distribute ticket keys fleet-wide).
        self.ticket_keeper = None
        if config.session_tickets:
            from ..tls.ticket import TicketKeeper
            self.ticket_keeper = TicketKeeper(
                bytes(rng.stream("stek").bytes(16)),
                lifetime=config.session_lifetime)

        self.topology = CpuTopology(sim, config.worker_processes,
                                    ht_efficiency=ht_efficiency)
        per_worker = config.ssl_engine.qat_instances_per_worker
        self.instance_pool: Optional[InstancePool] = None
        if config.uses_qat:
            flat = qat_device.allocate_instances(
                config.worker_processes * per_worker)
            eng_cfg = config.ssl_engine
            if eng_cfg.qat_instance_policy == "dynamic":
                # A lane must settle for at least one tick before it
                # can migrate again (hysteresis against thrash).
                policy = DynamicPolicy(
                    min_dwell=eng_cfg.qat_rebalance_interval)
            else:
                policy = make_policy(eng_cfg.qat_instance_policy)
            # The pool owns one userspace driver per instance; the
            # policy's initial leases reproduce the historical
            # consecutive-chunk partition (with round-robin allocation
            # each worker's chunk lands on different endpoints).
            self.instance_pool = InstancePool(
                sim, [QatUserspaceDriver(inst) for inst in flat],
                config.worker_processes, policy)
        self._rebalance_proc_running = False

        # One shared network-attached crypto service per deployment
        # (offload_backend "remote"): all workers' RPC batches funnel
        # through one NIC-pair of links into one processor pool.
        self.remote_service: Optional[RemoteCryptoService] = None
        self._remote_tx: Optional[Link] = None
        self._remote_rx: Optional[Link] = None
        if config.uses_remote:
            eng_cfg = config.ssl_engine
            self.remote_service = RemoteCryptoService(
                sim, n_processors=eng_cfg.remote_processors,
                service_scale=eng_cfg.remote_service_scale)
            self._remote_tx = Link(
                sim, latency=eng_cfg.remote_link_latency,
                bandwidth_bps=eng_cfg.remote_link_bandwidth,
                name="server->accel")
            self._remote_rx = Link(
                sim, latency=eng_cfg.remote_link_latency,
                bandwidth_bps=eng_cfg.remote_link_bandwidth,
                name="accel->server")

        # Listen sockets outlive worker incarnations (nginx inherits
        # them across respawns and reloads), so they are bound once and
        # handed to whichever worker currently serves the slot.
        self.listeners = [net.bind(self.listen_addr(i))
                          for i in range(config.worker_processes)]
        self.supervisor = WorkerSupervisor(sim, self)
        #: Dead incarnations (crashed or drained out), kept so their
        #: metrics still aggregate into :meth:`metrics_snapshot`.
        self.retired_workers: List[Worker] = []
        self.workers: List[Worker] = [
            self._make_worker(i) for i in range(config.worker_processes)]

    def _ctx_factory(self, worker_id: int):
        """The SSL-context factory for one worker slot. Reads
        ``self.config`` at call time, so a replacement worker spawned
        after a reload picks up the new configuration; the worker's RNG
        stream is slot-keyed and cached by the registry, so a respawned
        incarnation *continues* the stream deterministically."""
        sim = self.sim
        worker_rng = self._rng.stream(f"worker-{worker_id}")

        def make_ctx(worker, core=None):
            config = self.config
            core = worker.core
            tls_cfg = TlsServerConfig(
                provider=self.provider, suites=self._suites,
                rng=worker_rng,
                credentials_rsa=self._cred_rsa,
                credentials_ecdsa=self._cred_ecdsa,
                curves=config.curves,
                session_cache=self.session_cache,
                issue_tickets=config.session_tickets,
                ticket_keeper=self.ticket_keeper,
                clock=lambda: sim.now)
            eng_cfg = config.ssl_engine
            engine_kw = dict(
                algorithms=eng_cfg.default_algorithm,
                request_deadline=eng_cfg.qat_request_deadline,
                submit_max_retries=eng_cfg.qat_submit_max_retries,
                breaker_failure_threshold=(
                    eng_cfg.qat_breaker_failure_threshold),
                breaker_reset_timeout=(
                    eng_cfg.qat_breaker_reset_timeout),
                software_fallback=eng_cfg.qat_software_fallback,
                batch_size=eng_cfg.qat_batch_size,
                batch_timeout=eng_cfg.qat_batch_timeout,
                admission_limit=(
                    eng_cfg.offload_admission_limit or None),
                sched_policy=eng_cfg.offload_sched_policy,
                sched_weights=(
                    dict(eng_cfg.offload_sched_weights) or None),
                conn_budget=(eng_cfg.offload_conn_budget or None),
                # Per-incarnation retry-backoff jitter seed: one draw
                # from the worker's stream, so simultaneous ring-full
                # bounces across workers desynchronize their retries
                # while same-seed runs replay bit-for-bit.
                backoff_jitter_seed=int(worker_rng.integers(1 << 63)))
            if config.uses_qat:
                backend = self.instance_pool.register(worker_id)
                engine = AsyncOffloadEngine(
                    backend, core, self.cost_model, **engine_kw)
            elif config.uses_remote:
                backend = RemoteAcceleratorBackend(
                    sim, self.remote_service,
                    tx_link=self._remote_tx, rx_link=self._remote_rx,
                    window=eng_cfg.remote_window)
                engine = AsyncOffloadEngine(
                    backend, core, self.cost_model, **engine_kw)
            else:
                engine = SoftwareEngine(core, self.cost_model)
            async_mode = (config.async_impl if config.async_offload
                          else "sync")
            return SslContext(tls_cfg, engine, core, self.cost_model,
                              async_mode=async_mode,
                              version=self._version)

        return make_ctx

    def _make_worker(self, slot: int, generation: int = 0) -> Worker:
        """Build (but don't start) a worker incarnation for ``slot``,
        reusing the slot's core and inherited listen socket."""
        return Worker(self.sim, slot, self.topology[slot],
                      self.listeners[slot], self._ctx_factory(slot),
                      self.config, self.cost_model,
                      generation=generation)

    # -- addressing -----------------------------------------------------------

    def listen_addr(self, worker_id: int) -> str:
        """Per-worker listen address (models SO_REUSEPORT sharding)."""
        return f"{self.config.listen}#{worker_id}"

    def addresses(self) -> List[str]:
        return [self.listen_addr(i) for i in range(len(self.workers))]

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        for i, w in enumerate(self.workers):
            self._start_worker(i, w)
        pool = self.instance_pool
        if pool is not None:
            if (isinstance(pool.policy, DynamicPolicy)
                    and not self._rebalance_proc_running):
                self._rebalance_proc_running = True
                self.sim.process(self._rebalance_loop(),
                                 name="pool-rebalance")
        # Deterministic worker-crash faults from the device's plan.
        plan = getattr(self.qat_device, "fault_plan", None)
        if plan is not None and getattr(plan, "worker_crashes", ()):
            self.supervisor.schedule_crashes(plan)

    def _start_worker(self, slot: int, worker: Worker) -> None:
        """Start an incarnation and wire it into the pool (pressure and
        breaker-health feeds) and the supervisor."""
        worker.start()
        pool = self.instance_pool
        if pool is not None:
            engine = worker.engine

            def pressure(engine=engine) -> float:
                return (engine.inflight.total
                        + engine.admission_queued)

            def healthy(engine=engine) -> bool:
                return engine.open_breakers == 0

            pool.set_pressure_source(slot, pressure)
            pool.set_health_source(slot, healthy)
        self.supervisor.watch(slot, worker)

    # -- supervision entry points ---------------------------------------------

    def reload(self, new_config: Optional[ServerConfig] = None) -> bool:
        """Graceful reload (SIGHUP semantics): validate the new config,
        swap it in, spawn a new worker generation and drain the old one.
        Returns False (old config keeps serving) if validation rejects
        the candidate."""
        return self.supervisor.reload(new_config)

    def crash_worker(self, slot: int) -> bool:
        """Kill one worker incarnation abruptly (test/fault hook)."""
        return self.supervisor.crash_worker(slot)

    def _rebalance_loop(self):
        interval = self.config.ssl_engine.qat_rebalance_interval
        try:
            while self._rebalance_proc_running:
                yield self.sim.timeout(interval)
                if not self._rebalance_proc_running:
                    return
                self.instance_pool.rebalance(self.sim.now)
        finally:
            self._rebalance_proc_running = False

    def stop(self) -> None:
        self._rebalance_proc_running = False
        for w in self.workers:
            w.stop()
        for w in self.retired_workers:
            if w.running:
                w.stop()

    # -- metrics ------------------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        total: dict = {}
        for w in list(self.workers) + list(self.retired_workers):
            for k, v in w.metrics.snapshot().items():
                total[k] = total.get(k, 0) + v
        return total

    def consistent_status_snapshot(self) -> dict:
        """stub_status and firmware counters captured as one atomic
        pair: every worker's page is refreshed from its engine ledgers
        and the device's ``fw_counter_totals()`` is read in the same
        synchronous call, with no simulation step in between. This is
        the only read under which the two sides are guaranteed to
        agree mid-pass (see :meth:`Worker.status_snapshot`)."""
        workers = {}
        for w in list(self.workers) + list(self.retired_workers):
            key = f"w{w.worker_id}g{w.generation}"
            workers[key] = w.status_snapshot()
        fw = (self.qat_device.fw_counter_totals()
              if self.qat_device is not None else {})
        return {"workers": workers, "fw": fw}

    def total_busy_time(self) -> float:
        return self.topology.total_busy_time()
