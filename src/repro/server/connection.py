"""Per-connection server state, including the TLS-ASYNC state of the
application-level TLS state machine (paper section 3.2) and the saved
read handler that guards against event disorder (section 4.2).
"""

from __future__ import annotations

from collections import deque
from enum import Enum, auto
from typing import Any, Callable, Deque, Optional

from ..net.epoll_sim import NotifyFd
from ..net.socket_sim import SimSocket
from ..ssl.connection import SslConnection

__all__ = ["ConnState", "ServerConnection"]


class ConnState(Enum):
    """Application-level TLS connection states."""

    HANDSHAKE = auto()
    #: Established, waiting for a client request (idle / keepalive).
    IDLE = auto()
    #: Reading or processing a request.
    READING = auto()
    #: Writing the response.
    WRITING = auto()
    #: Paused on an async crypto request (the new TLS-ASYNC state).
    TLS_ASYNC = auto()
    CLOSED = auto()


class ServerConnection:
    """One accepted TLS connection inside a worker."""

    def __init__(self, conn_id: int, sock: SimSocket,
                 ssl: SslConnection) -> None:
        self.conn_id = conn_id
        self.sock = sock
        self.ssl = ssl
        self.state = ConnState.HANDSHAKE
        #: State to restore when the async event is processed.
        self.prior_state: Optional[ConnState] = None
        #: The handler to reschedule on the async event (section 3.2).
        self.async_handler: Optional[Callable] = None
        #: Mirrors stub_status's idle count for this conn.  Teardown can
        #: be interrupted between the CLOSED transition and the stub
        #: update, so the flag — not ``state`` — is authoritative.
        self.stub_idle: bool = False
        #: True once stub_status counted the accept.  The accept path
        #: yields (EPOLL_CTL kernel crossing) between inserting the
        #: conn into the worker's table and the on_accept() update, so
        #: a kill() landing in that window must skip the close-side
        #: update or the alive count underflows.
        self.stub_open: bool = False
        #: Bumped on every TLS-ASYNC parking.  Notification-queue and
        #: retry entries are stamped with it so a stale entry (the conn
        #: was already resumed through the other channel and has parked
        #: on a *new* op) cannot re-run the handler and double-submit.
        self.async_token: int = 0
        #: A read event arrived while TLS-ASYNC: cleared & saved, to be
        #: restored after the async event is processed (section 4.2).
        self.saved_read_pending = False
        #: Peer closed; tear down once current processing completes.
        self.eof_pending = False
        #: Inbound application-data records not yet decrypted.
        self.pending_records: Deque[Any] = deque()
        #: One notification FD shared by all async jobs of this
        #: connection (the section 4.4 optimization).
        self.notify_fd: Optional[NotifyFd] = None
        #: Response bytes still to be written (continuation state).
        self.current_request: Optional[Any] = None
        self.requests_served = 0
        self.handshake_completed_at: Optional[float] = None
        #: When this connection entered TLS-ASYNC (watchdog deadline
        #: anchor); None while not paused.
        self.async_since: Optional[float] = None
        #: Earliest time a ring-full retry should be re-attempted
        #: (exponential submit backoff).
        self.retry_not_before = 0.0

    @property
    def is_idle(self) -> bool:
        return self.state is ConnState.IDLE

    @property
    def in_async(self) -> bool:
        return self.state is ConnState.TLS_ASYNC

    def enter_async(self, handler: Callable) -> None:
        if self.state is ConnState.TLS_ASYNC:
            raise RuntimeError("already in TLS-ASYNC")
        self.prior_state = self.state
        self.state = ConnState.TLS_ASYNC
        self.async_handler = handler
        self.async_token += 1

    def leave_async(self) -> Callable:
        if self.state is not ConnState.TLS_ASYNC:
            raise RuntimeError("not in TLS-ASYNC")
        handler = self.async_handler
        self.state = self.prior_state
        self.prior_state = None
        self.async_handler = None
        self.async_since = None
        return handler

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ServerConnection {self.conn_id} {self.state.name}>"
