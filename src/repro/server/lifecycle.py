"""Worker lifecycle supervision (the master's process-management role).

Nginx's master process does three things QTLS inherits and this module
reproduces:

* **crash respawn** — when a worker process dies (here: a deterministic
  ``worker_crash`` fault or an unexpected event-loop exception), the
  master reaps it, aborts the offload ops the dead incarnation left in
  flight, retires its pool lease epoch (late QAT completions for a dead
  epoch hit tombstones instead of being misdelivered to the successor)
  and forks a replacement onto the same core, up to ``max_respawns``
  per slot;
* **graceful reload** — SIGHUP semantics: the candidate configuration
  is validated first (rejected configs leave the old one serving), then
  a new worker generation inherits the listen sockets immediately while
  the old generation stops accepting and drains its open connections
  under ``worker_drain_timeout`` (force-aborted past the deadline), so
  connection throughput never drops to zero across the swap;
* **state bookkeeping** — every incarnation walks
  spawning → serving → draining → exited; transitions publish to the
  worker's stub_status page and to the obs layer, and the whole record
  is replayable bit-for-bit under a fixed seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from .config import ServerConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.kernel import Simulator
    from .master import TlsServer
    from .worker import Worker

__all__ = ["WorkerState", "WorkerRecord", "WorkerSupervisor",
           "DRAIN_POLL_INTERVAL"]

#: How often the drain monitor re-checks an old-generation worker.
#: Fine enough that the measured drain time is accurate, coarse enough
#: not to dominate the event count.
DRAIN_POLL_INTERVAL = 2.5e-4

#: Server-level directives a graceful reload cannot change (nginx would
#: need a binary upgrade / full restart for the equivalents).
_IMMUTABLE_SERVER_FIELDS = ("worker_processes", "listen", "suites",
                            "curves", "rsa_bits", "tls_version")
#: ssl_engine directives pinned for the same reason (they change the
#: provisioned hardware shape, not per-worker behaviour).
_IMMUTABLE_ENGINE_FIELDS = ("use_engine", "offload_backend",
                            "qat_instances_per_worker",
                            "qat_instance_policy")


class WorkerState(enum.Enum):
    """One worker incarnation's position in the lifecycle."""

    SPAWNING = "spawning"
    SERVING = "serving"
    DRAINING = "draining"
    EXITED = "exited"


@dataclass
class WorkerRecord:
    """Supervision bookkeeping for one worker incarnation."""

    worker: "Worker"
    slot: int
    generation: int
    epoch: int
    state: WorkerState = WorkerState.SPAWNING
    #: Died abruptly (injected fault or unexpected exception).
    crashed: bool = False
    #: Drain deadline expired; remaining connections were force-aborted.
    forced: bool = False
    spawned_at: float = 0.0
    exited_at: Optional[float] = None
    events: List[str] = field(default_factory=list)


class WorkerSupervisor:
    """The master's process supervisor: watches every worker
    incarnation's completion event, reaps crashes, runs graceful
    reloads and keeps the lifecycle ledger."""

    def __init__(self, sim: "Simulator", server: "TlsServer") -> None:
        self.sim = sim
        self.server = server
        #: Slot -> the *current* incarnation's record. Old-generation
        #: records move to :attr:`retired` / :attr:`draining_records`.
        self.records: Dict[int, WorkerRecord] = {}
        self.retired: List[WorkerRecord] = []
        self.draining_records: List[WorkerRecord] = []
        #: Config generation; bumped by each successful reload.
        self.generation = 0
        self.crashes = 0
        self.respawns = 0
        self.reloads = 0
        self.reload_rejections = 0
        self.forced_aborts = 0
        #: Slots abandoned after exhausting their respawn budget.
        self.dead_slots: set = set()
        self._respawn_counts: Dict[int, int] = {}
        #: (time, kind, detail) — the deterministic lifecycle journal.
        self.events: List[Tuple[float, str, str]] = []

    # -- journal / publication -------------------------------------------

    def _log(self, kind: str, detail: str) -> None:
        self.events.append((self.sim.now, kind, detail))
        obs = getattr(self.sim, "obs", None)
        if obs is not None and obs.enabled:
            obs.event(f"lifecycle-{kind}", self.sim.now,
                      args={"detail": detail})

    def _publish(self, record: WorkerRecord) -> None:
        record.worker.stub_status.update_lifecycle(
            state=record.state.value,
            generation=record.generation,
            epoch=record.epoch,
            respawns=self._respawn_counts.get(record.slot, 0))

    def _sample_serving(self) -> None:
        obs = getattr(self.sim, "obs", None)
        if obs is not None and obs.enabled:
            serving = sum(1 for r in self.records.values()
                          if r.state is WorkerState.SERVING)
            obs.util_sample("lifecycle.serving", self.sim.now, serving,
                            capacity=self.server.config.worker_processes)

    # -- watching ---------------------------------------------------------

    def watch(self, slot: int, worker: "Worker") -> WorkerRecord:
        """Adopt a freshly started incarnation: record it and hook its
        event-loop completion so the supervisor reaps every exit."""
        backend = getattr(worker.engine, "backend", None)
        record = WorkerRecord(
            worker=worker, slot=slot, generation=worker.generation,
            epoch=getattr(backend, "epoch", 0), spawned_at=self.sim.now)
        record.state = WorkerState.SERVING
        self.records[slot] = record
        self._publish(record)
        self._sample_serving()
        proc = worker.proc
        if proc is not None and proc.callbacks is not None:
            proc.callbacks.append(
                lambda ev, record=record: self._on_worker_exit(record, ev))
        return record

    def _on_worker_exit(self, record: WorkerRecord, ev) -> None:
        """The incarnation's event loop returned (or died)."""
        if ev.exception is not None:
            ev.defuse()  # the supervisor is the reaper; don't crash the sim
        if record.state is WorkerState.EXITED:
            return  # already reaped (crash_worker / drain monitor)
        if record.state is WorkerState.DRAINING:
            # Old generation finished its last connection on its own.
            self._log("worker-drained",
                      f"w{record.slot} gen{record.generation}")
            self._terminate(record)
            return
        if ev.exception is None and not record.worker.running:
            # Clean server.stop(): no teardown needed beyond the ledger.
            record.state = WorkerState.EXITED
            record.exited_at = self.sim.now
            self._publish(record)
            self.retired.append(record)
            return
        cause = (repr(ev.exception) if ev.exception is not None
                 else "event loop exited unexpectedly")
        self._crash(record, cause)

    # -- crash / respawn ---------------------------------------------------

    def crash_worker(self, slot: int, cause: str = "injected") -> bool:
        """Kill the slot's current incarnation abruptly. Returns False
        if there is nothing alive to kill (already-dead slot)."""
        record = self.records.get(slot)
        if record is None or record.state is WorkerState.EXITED:
            return False
        self._crash(record, cause)
        return True

    def _crash(self, record: WorkerRecord, cause: str) -> None:
        slot = record.slot
        self.crashes += 1
        record.crashed = True
        self._log("worker-crash",
                  f"w{slot} gen{record.generation} ({cause})")
        self._terminate(record)
        cfg = self.server.config
        if (cfg.worker_respawn
                and self._respawn_counts.get(slot, 0) < cfg.max_respawns):
            self._respawn(slot, record)
        else:
            self._abandon(slot, record)

    def _terminate(self, record: WorkerRecord) -> None:
        """Common teardown: kill the incarnation, retire its lease
        epoch (tombstoning late completions) and close the ledger
        entry. ``Worker.kill()`` shuts the worker's reactor down, which
        stops every event source in registration order — the timer
        thread cancels its pending tick, the interrupt retriever
        unhooks its ring callbacks, the sweeps tick-exit — so nothing
        of the dead incarnation keeps running against a retired epoch.
        Idempotent — the exit callback and the drain monitor can both
        land here."""
        if record.state is WorkerState.EXITED:
            return
        record.state = WorkerState.EXITED
        record.exited_at = self.sim.now
        record.worker.kill()
        pool = self.server.instance_pool
        if pool is not None:
            pool.retire(record.slot, record.epoch)
        self._publish(record)
        self._sample_serving()
        self.retired.append(record)

    def _respawn(self, slot: int, dead: WorkerRecord) -> None:
        self.respawns += 1
        self._respawn_counts[slot] = self._respawn_counts.get(slot, 0) + 1
        server = self.server
        pool = server.instance_pool
        if pool is not None:
            # The replacement registers under a fresh epoch, so any
            # completion still in the rings for the dead incarnation
            # routes to a tombstone, never to the successor.
            pool.advance_epoch(slot)
        replacement = server._make_worker(slot,
                                          generation=self.generation)
        server.retired_workers.append(server.workers[slot])
        server.workers[slot] = replacement
        server._start_worker(slot, replacement)
        self._log("worker-respawn",
                  f"w{slot} gen{self.generation} "
                  f"respawn #{self._respawn_counts[slot]} "
                  f"epoch {self.records[slot].epoch}")

    def _abandon(self, slot: int, dead: WorkerRecord) -> None:
        """Respawn budget exhausted (or respawn disabled): the slot
        stays dark, but its QAT lanes go back to work for the
        survivors."""
        self.dead_slots.add(slot)
        pool = self.server.instance_pool
        if pool is not None:
            pool.set_pressure_source(slot, lambda: 0.0)
            pool.set_health_source(slot, lambda: False)
            pool.reclaim_leases(slot)
        if self.server.config.worker_respawn:
            why = (f"respawn budget {self.server.config.max_respawns} "
                   "exhausted")
        else:
            why = "respawn off"
        self._log("worker-abandoned",
                  f"w{slot} gen{dead.generation} ({why})")

    # -- graceful reload ---------------------------------------------------

    def reload(self, new_config: Optional[ServerConfig] = None) -> bool:
        """SIGHUP: validate, swap, spawn the next generation, drain the
        old one. Returns False — old config untouched and still serving
        every request — when the candidate fails validation."""
        server = self.server
        old_config = server.config
        if new_config is None:
            new_config = old_config  # plain SIGHUP re-read (worker cycle)
        try:
            new_config.validate()
            if new_config is not old_config:
                self._check_reloadable(old_config, new_config)
        except ValueError as exc:
            self.reload_rejections += 1
            self._log("reload-rejected", str(exc))
            return False
        self.reloads += 1
        self.generation += 1
        self._log("reload", f"generation {self.generation}")
        server.config = new_config
        pool = server.instance_pool
        for slot in sorted(self.records):
            record = self.records[slot]
            if record.state is not WorkerState.SERVING:
                continue  # dead slots stay dark across reloads
            # Old incarnation: stop accepting *first* so the listener
            # has exactly one watcher at a time...
            record.worker.begin_drain()
            record.state = WorkerState.DRAINING
            self._publish(record)
            self.draining_records.append(record)
            if pool is not None:
                pool.advance_epoch(slot)
            # ...then the new generation takes the listen socket
            # immediately: the accept backlog is never unwatched, so
            # CPS cannot drop to zero during the handover.
            replacement = server._make_worker(slot,
                                              generation=self.generation)
            server.retired_workers.append(server.workers[slot])
            server.workers[slot] = replacement
            server._start_worker(slot, replacement)
            self.sim.process(
                self._drain_monitor(record,
                                    new_config.worker_drain_timeout),
                name=f"drain-w{slot}.g{record.generation}")
        self._sample_serving()
        return True

    def _check_reloadable(self, old: ServerConfig,
                          new: ServerConfig) -> None:
        for name in _IMMUTABLE_SERVER_FIELDS:
            if getattr(old, name) != getattr(new, name):
                raise ValueError(
                    f"reload cannot change {name!r} (requires a restart)")
        for name in _IMMUTABLE_ENGINE_FIELDS:
            if getattr(old.ssl_engine, name) != getattr(new.ssl_engine,
                                                        name):
                raise ValueError(
                    f"reload cannot change ssl_engine {name!r} "
                    "(requires a restart)")

    def _drain_monitor(self, record: WorkerRecord, deadline_s: float):
        """Watch one draining incarnation; force-abort past the
        deadline (nginx worker_shutdown_timeout semantics)."""
        deadline = self.sim.now + deadline_s
        while self.sim.now < deadline:
            yield self.sim.timeout(DRAIN_POLL_INTERVAL)
            if record.state is WorkerState.EXITED:
                return  # exited on its own, already reaped
            if record.worker.drained:
                # Finished, but parked inside a blocked epoll_wait with
                # nothing left to wake it: reap it here.
                self._log("worker-drained",
                          f"w{record.slot} gen{record.generation}")
                self._terminate(record)
                return
        if record.state is WorkerState.EXITED:
            return
        self.forced_aborts += 1
        record.forced = True
        self._log("drain-forced",
                  f"w{record.slot} gen{record.generation} "
                  f"({len(record.worker.conns)} conns aborted after "
                  f"{deadline_s * 1e3:.1f} ms)")
        self._terminate(record)

    # -- fault-plan integration -------------------------------------------

    def schedule_crashes(self, plan) -> None:
        """Arm the fault plan's deterministic ``worker_crashes``."""
        for slot, when in plan.worker_crashes:
            def fire(slot=slot):
                if self.crash_worker(slot, cause="fault plan"):
                    plan.on_worker_crash(slot, self.sim.now)
            self.sim.call_at(when, fire)

    # -- reporting ---------------------------------------------------------

    @property
    def draining_count(self) -> int:
        return sum(1 for r in self.draining_records
                   if r.state is WorkerState.DRAINING)

    def snapshot(self) -> dict:
        return {
            "generation": self.generation,
            "crashes": self.crashes,
            "respawns": self.respawns,
            "reloads": self.reloads,
            "reload_rejections": self.reload_rejections,
            "forced_aborts": self.forced_aborts,
            "draining": self.draining_count,
            "dead_slots": sorted(self.dead_slots),
        }
