"""Minimal HTTP layer: enough to serve fixed-size objects over TLS.

The paper's workloads request fixed-size files (4 KB – 1024 KB for
Figure 10, a <100 B page for Figure 11); requests carry the desired
size in the path, e.g. ``GET /file?size=65536``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HttpRequest", "HttpResponse", "encode_request", "parse_request",
           "response_body", "RESPONSE_HEADER_SIZE"]

#: Bytes of response head (status line + headers) preceding the body.
RESPONSE_HEADER_SIZE = 170


@dataclass(frozen=True)
class HttpRequest:
    """A parsed HTTP request."""

    path: str
    size: int               # requested object size in bytes
    keepalive: bool = True


@dataclass(frozen=True)
class HttpResponse:
    status: int
    body_size: int


def encode_request(size: int, keepalive: bool = True) -> bytes:
    """Client-side request bytes."""
    ka = "keep-alive" if keepalive else "close"
    return (f"GET /file?size={size} HTTP/1.1\r\n"
            f"Connection: {ka}\r\n\r\n").encode()


def parse_request(raw: bytes) -> HttpRequest:
    """Server-side parse; raises ValueError on malformed input."""
    try:
        text = raw.decode()
        request_line, *headers = text.split("\r\n")
        method, path, _version = request_line.split(" ")
        if method != "GET":
            raise ValueError(f"unsupported method {method}")
        size = 0
        if "size=" in path:
            size = int(path.split("size=", 1)[1].split("&")[0])
        if size < 0:
            raise ValueError("negative size")
        keepalive = not any(h.lower() == "connection: close"
                            for h in headers)
        return HttpRequest(path=path, size=size, keepalive=keepalive)
    except (UnicodeDecodeError, ValueError, IndexError) as e:
        raise ValueError(f"malformed request: {e}") from None


_BODY_CACHE: dict = {}


def response_body(size: int) -> bytes:
    """The served object: header + body bytes (cached per size)."""
    body = _BODY_CACHE.get(size)
    if body is None:
        body = b"H" * RESPONSE_HEADER_SIZE + b"x" * size
        if size <= 4 * 1024 * 1024:
            _BODY_CACHE[size] = body
    return body
