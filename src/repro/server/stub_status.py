"""The stub_status module (paper section 4.3).

Nginx's stub_status counts alive and idle connections; QTLS extends it
to TLS-enabled connections and computes the number of *active* TLS
connections as ``TCactive = TCalive - TCidle``. An idle connection is
one waiting for a request from the end client (including keepalive);
active ones are handshaking, reading a request or writing a response.
"""

from __future__ import annotations

__all__ = ["StubStatus"]


class StubStatus:
    """Per-worker connection accounting."""

    def __init__(self) -> None:
        self.tls_alive = 0
        self.tls_idle = 0
        self.total_accepted = 0
        self.total_closed = 0
        # Degradation section (robustness layer): refreshed by the
        # worker from the engine/driver counters, plus the watchdog's
        # own rescue count.
        self.fallback_ops = 0
        self.op_timeouts = 0
        self.open_breakers = 0
        self.submit_failures = 0
        self.watchdog_rescues = 0
        # Offload-backend section: which backend serves this worker
        # and its submission-batching stats.
        self.backend = ""
        self.batches_submitted = 0
        self.batch_ops = 0
        # Instance-pool / admission-control section: refreshed by the
        # worker from the pool and engine counters. ``pool_policy``
        # empty = section hidden (no pool and no admission control).
        self.pool_policy = ""
        self.pool_leases = 0
        self.pool_migrations = 0
        self.admission_limit = 0
        self.admission_queued = 0
        self.admission_peak = 0
        self.admission_admitted = 0
        self._pool_section = False
        # Class-aware scheduler section: arbitration policy plus
        # per-lane depth/served/starved counters. Hidden (empty policy)
        # under the default global FIFO with no connection budget.
        self.sched_policy = ""
        self.sched_conn_budget = 0
        self.sched_lanes: dict = {}
        self._sched_section = False
        # Lifecycle section (supervision layer): this worker's state
        # machine position, config generation, lease epoch and how many
        # times its slot has been respawned. Empty state = hidden.
        self.lifecycle_state = ""
        self.lifecycle_generation = 0
        self.lifecycle_epoch = 0
        self.lifecycle_respawns = 0
        # Request-tracing section: lifecycle counters published by the
        # worker from the simulation's RequestTracer (all zero when
        # tracing is off).
        self.trace_ops = 0
        self.trace_open = 0
        self.trace_spans = 0
        self.trace_sampled_out = 0
        self.tracing = False
        # Reactor section: per-event-source wake/dispatch stats
        # published by the worker from its reactor registry. Render
        # only — deliberately NOT part of :meth:`counters`, so replay
        # fingerprints stay stable across loop refactors.
        self.reactor_sources: dict = {}

    # -- lifecycle hooks -------------------------------------------------

    def on_accept(self) -> None:
        self.tls_alive += 1
        self.total_accepted += 1

    def on_close(self, was_idle: bool) -> None:
        self.tls_alive -= 1
        if was_idle:
            self.tls_idle -= 1
        self.total_closed += 1
        self._check()

    def on_idle(self) -> None:
        """Connection started waiting for a client request."""
        self.tls_idle += 1
        self._check()

    def on_active(self) -> None:
        """Idle connection received a request (or resumed activity)."""
        self.tls_idle -= 1
        self._check()

    # -- the quantity the heuristic needs ------------------------------------

    @property
    def tls_active(self) -> int:
        """TCactive = TCalive - TCidle."""
        return self.tls_alive - self.tls_idle

    def _check(self) -> None:
        if self.tls_idle < 0 or self.tls_idle > self.tls_alive:
            raise RuntimeError(
                f"stub_status inconsistent: alive={self.tls_alive} "
                f"idle={self.tls_idle}")

    # -- degradation reporting ------------------------------------------------

    def update_degradation(self, *, fallback_ops: int, op_timeouts: int,
                           open_breakers: int, submit_failures: int,
                           backend: str = "", batches_submitted: int = 0,
                           batch_ops: int = 0) -> None:
        """Refresh the offload-health counters (worker watchdog)."""
        self.fallback_ops = fallback_ops
        self.op_timeouts = op_timeouts
        self.open_breakers = open_breakers
        self.submit_failures = submit_failures
        if backend:
            self.backend = backend
        self.batches_submitted = batches_submitted
        self.batch_ops = batch_ops

    @property
    def mean_batch_size(self) -> float:
        return (self.batch_ops / self.batches_submitted
                if self.batches_submitted else 0.0)

    def update_pool(self, *, policy: str, leases: int, migrations: int,
                    admission_limit: int, admission_queued: int,
                    admission_peak: int, admission_admitted: int) -> None:
        """Refresh the instance-pool / admission-control counters."""
        self._pool_section = True
        self.pool_policy = policy
        self.pool_leases = leases
        self.pool_migrations = migrations
        self.admission_limit = admission_limit
        self.admission_queued = admission_queued
        self.admission_peak = admission_peak
        self.admission_admitted = admission_admitted

    def update_scheduler(self, *, policy: str, conn_budget: int,
                         lanes: dict) -> None:
        """Refresh the class-aware scheduler counters (the worker
        publishes the engine scheduler's snapshot)."""
        self._sched_section = True
        self.sched_policy = policy
        self.sched_conn_budget = conn_budget
        self.sched_lanes = lanes

    def update_lifecycle(self, *, state: str, generation: int,
                         epoch: int, respawns: int) -> None:
        """Refresh the supervision-layer section (the master publishes
        this on every state transition)."""
        self.lifecycle_state = state
        self.lifecycle_generation = generation
        self.lifecycle_epoch = epoch
        self.lifecycle_respawns = respawns

    def update_reactor(self, *, sources: dict) -> None:
        """Refresh the per-source reactor stats (worker watchdog /
        consistent-snapshot reads). ``sources`` maps source name to its
        :meth:`~repro.server.reactor.EventSource.stats` dict, in
        registration order."""
        self.reactor_sources = sources

    def update_trace(self, *, trace_ops: int, trace_open: int,
                     trace_spans: int, trace_sampled_out: int) -> None:
        """Refresh the request-tracing counters (worker watchdog /
        shutdown)."""
        self.tracing = True
        self.trace_ops = trace_ops
        self.trace_open = trace_open
        self.trace_spans = trace_spans
        self.trace_sampled_out = trace_sampled_out

    @property
    def degraded(self) -> bool:
        """Is the offload path currently (or was it ever) impaired?"""
        return (self.fallback_ops > 0 or self.op_timeouts > 0
                or self.open_breakers > 0 or self.watchdog_rescues > 0)

    def counters(self) -> dict:
        """Machine-readable counter snapshot (the render() numbers,
        minus formatting). Read through
        :meth:`~repro.server.worker.Worker.status_snapshot` for a view
        consistent with the engine/driver ledgers."""
        return {
            "tls_alive": self.tls_alive, "tls_idle": self.tls_idle,
            "tls_active": self.tls_active,
            "accepted": self.total_accepted, "closed": self.total_closed,
            "backend": self.backend,
            "batches_submitted": self.batches_submitted,
            "batch_ops": self.batch_ops,
            "fallback_ops": self.fallback_ops,
            "op_timeouts": self.op_timeouts,
            "open_breakers": self.open_breakers,
            "submit_failures": self.submit_failures,
            "watchdog_rescues": self.watchdog_rescues,
            "admission_queued": self.admission_queued,
            "admission_peak": self.admission_peak,
            "admission_admitted": self.admission_admitted,
        }

    def render(self) -> str:
        """The stub_status page text (Nginx style, plus the QTLS
        TLS-connection and offload-degradation extensions)."""
        return (
            f"Active connections: {self.tls_active}\n"
            f"TLS alive: {self.tls_alive} idle: {self.tls_idle} "
            f"active: {self.tls_active}\n"
            f"accepted: {self.total_accepted} closed: {self.total_closed}\n"
            f"offload backend: {self.backend or 'none'} "
            f"batches {self.batches_submitted} "
            f"mean_batch {self.mean_batch_size:.2f}\n"
            f"offload degradation: fallback_ops {self.fallback_ops} "
            f"op_timeouts {self.op_timeouts} "
            f"open_breakers {self.open_breakers} "
            f"submit_failures {self.submit_failures} "
            f"watchdog_rescues {self.watchdog_rescues}\n"
            + (f"instance pool: policy {self.pool_policy or 'none'} "
               f"leases {self.pool_leases} "
               f"migrations {self.pool_migrations} "
               f"admission limit {self.admission_limit} "
               f"queued {self.admission_queued} "
               f"peak {self.admission_peak} "
               f"admitted {self.admission_admitted}\n"
               if self._pool_section else "")
            + (f"offload sched: policy {self.sched_policy} "
               f"conn_budget {self.sched_conn_budget} "
               + " ".join(
                   f"{name}[depth {info['depth']} served {info['served']} "
                   f"starved {info['starved']} expired {info['expired']}]"
                   for name, info in self.sched_lanes.items())
               + "\n"
               if self._sched_section else "")
            + (f"lifecycle: state {self.lifecycle_state} "
               f"generation {self.lifecycle_generation} "
               f"epoch {self.lifecycle_epoch} "
               f"respawns {self.lifecycle_respawns}\n"
               if self.lifecycle_state else "")
            + (f"trace: ops {self.trace_ops} open {self.trace_open} "
               f"spans {self.trace_spans} "
               f"sampled_out {self.trace_sampled_out}\n"
               if self.tracing else "")
            + ("reactor: "
               + " ".join(
                   f"{name}[wakes {s['wakes']} events {s['events']} "
                   f"busy {s['busy'] * 1e6:.1f}us]"
                   for name, s in self.reactor_sources.items())
               + "\n"
               if self.reactor_sources else "")
        )
