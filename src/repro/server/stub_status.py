"""The stub_status module (paper section 4.3).

Nginx's stub_status counts alive and idle connections; QTLS extends it
to TLS-enabled connections and computes the number of *active* TLS
connections as ``TCactive = TCalive - TCidle``. An idle connection is
one waiting for a request from the end client (including keepalive);
active ones are handshaking, reading a request or writing a response.
"""

from __future__ import annotations

__all__ = ["StubStatus"]


class StubStatus:
    """Per-worker connection accounting."""

    def __init__(self) -> None:
        self.tls_alive = 0
        self.tls_idle = 0
        self.total_accepted = 0
        self.total_closed = 0

    # -- lifecycle hooks -------------------------------------------------

    def on_accept(self) -> None:
        self.tls_alive += 1
        self.total_accepted += 1

    def on_close(self, was_idle: bool) -> None:
        self.tls_alive -= 1
        if was_idle:
            self.tls_idle -= 1
        self.total_closed += 1
        self._check()

    def on_idle(self) -> None:
        """Connection started waiting for a client request."""
        self.tls_idle += 1
        self._check()

    def on_active(self) -> None:
        """Idle connection received a request (or resumed activity)."""
        self.tls_idle -= 1
        self._check()

    # -- the quantity the heuristic needs ------------------------------------

    @property
    def tls_active(self) -> int:
        """TCactive = TCalive - TCidle."""
        return self.tls_alive - self.tls_idle

    def _check(self) -> None:
        if self.tls_idle < 0 or self.tls_idle > self.tls_alive:
            raise RuntimeError(
                f"stub_status inconsistent: alive={self.tls_alive} "
                f"idle={self.tls_idle}")
