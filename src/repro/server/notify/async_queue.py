"""The application-defined async queue (kernel-bypass notification,
paper section 3.4).

When a QAT response is retrieved, the response callback inserts the
paused job's async handler at the tail of this queue — a plain
user-space operation, no kernel involvement. The queue is processed at
the end of each main-event-loop iteration; while inflight requests
exist, the loop keeps executing instead of sleep-waiting in epoll.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

__all__ = ["AsyncEventQueue"]


class AsyncEventQueue:
    """FIFO of async-handler references."""

    def __init__(self) -> None:
        self._queue: Deque[Any] = deque()
        self.enqueued = 0
        self.processed = 0

    def push(self, handler_ref: Any) -> None:
        """The response-callback entry point (tail insert)."""
        self._queue.append(handler_ref)
        self.enqueued += 1

    def pop(self) -> Optional[Any]:
        if not self._queue:
            return None
        self.processed += 1
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)
