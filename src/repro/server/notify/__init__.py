"""Async event notification schemes (paper section 3.4)."""

from .async_queue import AsyncEventQueue

__all__ = ["AsyncEventQueue"]
