"""The worker reactor: pluggable event sources behind one loop.

The paper's worker (sections 2.2, 3.3–3.4) is a single event loop, but
eight PRs of growth wired each wake mechanism by hand: epoll pollables,
``_heuristic_check`` sprinkled at call sites, a failover sweep, a
watchdog sweep, the timer polling thread, the interrupt retriever, and
ad-hoc deadline merging in ``_loop_timeout``. This module folds them
all behind a uniform seam:

* :class:`EventSource` — one wake mechanism. A source may *dispatch*
  ready pollables (listener, notify FDs, connection sockets), report a
  *deadline* to the arbiter (pending async events, due retries, the
  spin timeout while requests are in flight), run an ordered
  *end-of-pass stage* (async-queue drain, retries, heuristic check,
  batch flush, admission drain, drain pass), or own a *background
  process* (timer polling thread, interrupt retriever, failover sweep,
  watchdog).
* :class:`Reactor` — the registry. Registration order is dispatch
  order, stage order and teardown order, so two identically-configured
  workers dispatch identically — the determinism invariant the fuzz
  corpus fingerprints pin down.

The arbiter (:meth:`Reactor.next_timeout`) computes the epoll timeout
as the minimum over every source's deadline, attributing the win to
the earliest-registered source that achieved it; the staged pipeline
(:meth:`Reactor.end_of_pass`) runs the stage sources in registration
order at the end of every loop pass. Both are pure refactors of the
historical hand-threaded logic: for any default configuration the
simulated event sequence is byte-for-byte identical (enforced by
``tools/check_reactor_equivalence.py`` against the checked-in corpus
fingerprints).

Teardown protocol: ``Worker.kill()``/``stop()`` call
:meth:`Reactor.shutdown`, which stops every source in registration
order — the retrieval source first (the timer thread interrupts its
sleeping process, the interrupt retriever unhooks its ring callbacks)
and the sweep sources last (their loops observe ``worker.running`` and
exit at the next tick; interrupting them would perturb the event heap
for no benefit). Sources stay registered after shutdown so their
stats remain readable by ``stub_status``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, List, Optional, Tuple

from ..net.epoll_sim import NotifyFd

if TYPE_CHECKING:  # pragma: no cover
    from .worker import Worker

__all__ = ["EventSource", "Reactor", "SPIN_TIMEOUT",
           "ListenerSource", "NotifyFdSource", "ConnSource",
           "AsyncQueueSource", "RetrySource", "HeuristicSource",
           "TimerPollSource", "InterruptSource", "BatchFlushSource",
           "AdmissionSource", "DrainPassSource", "FailoverSource",
           "WatchdogSource"]

#: epoll timeout while spinning with inflight requests (bounds the
#: sim-event rate of the keep-executing loop; 0 would also be correct).
SPIN_TIMEOUT = 2e-6


class EventSource:
    """One wake mechanism plugged into a worker's :class:`Reactor`."""

    #: Stable identifier: stats keys, the stub_status ``reactor:`` line
    #: and the ``w<id>.reactor.<name>`` obs timelines.
    name = "source"
    #: Participates in the end-of-pass pipeline (:meth:`on_pass`).
    has_stage = False

    def __init__(self, worker: "Worker") -> None:
        self.worker = worker
        self.reactor: Optional["Reactor"] = None
        #: Times this source's deadline won the arbitration.
        self.wakes = 0
        #: Ready pollables dispatched through this source.
        self.events = 0
        #: Cumulative sim time spent inside this source's dispatch and
        #: end-of-pass work (the per-source dispatch latency).
        self.busy = 0.0

    # -- registration lifecycle -------------------------------------------

    def attach(self, reactor: "Reactor") -> None:
        self.reactor = reactor

    def start(self) -> None:
        """Spawn any background process (called in registration order
        by :meth:`Reactor.start`, after the worker's event loop)."""

    def stop(self) -> None:
        """Deregistration teardown (idempotent)."""

    # -- pollable dispatch ------------------------------------------------

    def matches(self, pollable) -> bool:
        """Does this source own the ready pollable?"""
        return False

    def on_event(self, pollable, owner) -> Generator:
        """Dispatch one ready pollable this source matched."""
        return None
        yield  # pragma: no cover

    # -- deadline arbitration --------------------------------------------

    def next_timeout(self, now: float) -> Optional[float]:
        """Relative deadline for the arbiter; None = unconstrained."""
        return None

    # -- end-of-pass stage ------------------------------------------------

    def on_pass(self, owner) -> Generator:
        """One end-of-pass pipeline stage (``has_stage`` sources only)."""
        return None
        yield  # pragma: no cover

    # -- reporting ---------------------------------------------------------

    def stats(self) -> dict:
        """Base counters plus source-specific extras."""
        return {"wakes": self.wakes, "events": self.events,
                "busy": self.busy}


class Reactor:
    """Ordered event-source registry driving one worker's loop."""

    def __init__(self, sim, worker: "Worker") -> None:
        self.sim = sim
        self.worker = worker
        self._sources: List[EventSource] = []
        self._stopped = False
        #: Name of the last arbitration winner (diagnostics).
        self.last_wake = ""

    @property
    def sources(self) -> Tuple[EventSource, ...]:
        return tuple(self._sources)

    def source(self, name: str) -> Optional[EventSource]:
        for s in self._sources:
            if s.name == name:
                return s
        return None

    # -- registration ------------------------------------------------------

    def register(self, source: EventSource) -> EventSource:
        """Append a source. Registration order *is* dispatch, deadline
        attribution, stage and teardown order."""
        source.attach(self)
        self._sources.append(source)
        return source

    def deregister(self, source: EventSource) -> None:
        """Stop one source and remove it from the registry."""
        if source in self._sources:
            source.stop()
            self._sources.remove(source)

    def start(self) -> None:
        for s in self._sources:
            s.start()

    def shutdown(self) -> None:
        """Stop every source in registration order (idempotent). The
        sources stay listed so stats remain readable post-mortem."""
        if self._stopped:
            return
        self._stopped = True
        for s in self._sources:
            s.stop()

    # -- the deadline arbiter ----------------------------------------------

    def next_timeout(self, now: float) -> Optional[float]:
        """The epoll timeout: minimum over every source's deadline.
        None (block until an event arrives) when no source constrains
        the pass. The earliest-registered source achieving the minimum
        is credited with the wake."""
        timeout: Optional[float] = None
        winner: Optional[EventSource] = None
        for s in self._sources:
            t = s.next_timeout(now)
            if t is None:
                continue
            if timeout is None or t < timeout:
                timeout = t
                winner = s
        if winner is not None:
            winner.wakes += 1
            self.last_wake = winner.name
        return timeout

    # -- pollable dispatch -------------------------------------------------

    def dispatch(self, pollable, owner) -> Generator:
        """Route one ready pollable to the first source that matches
        it (registration order). Unmatched pollables are dropped — a
        stale socket event whose connection already closed."""
        for s in self._sources:
            if s.matches(pollable):
                t0 = self.sim.now
                yield from s.on_event(pollable, owner)
                s.busy += self.sim.now - t0
                s.events += 1
                return
        return None

    # -- the staged end-of-pass pipeline ------------------------------------

    def end_of_pass(self, owner) -> Generator:
        """Run every stage source in registration order."""
        for s in self._sources:
            if not s.has_stage:
                continue
            t0 = self.sim.now
            yield from s.on_pass(owner)
            s.busy += self.sim.now - t0
        return None

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Per-source stats, in registration order (dict order is
        insertion order)."""
        return {s.name: s.stats() for s in self._sources}


# -- pollable sources ---------------------------------------------------------

class ListenerSource(EventSource):
    """The listen socket: accepts until EAGAIN (unless draining)."""

    name = "listener"

    def matches(self, pollable) -> bool:
        return pollable is self.worker.listener

    def on_event(self, pollable, owner) -> Generator:
        if not self.worker.draining:
            yield from self.worker._accept_all()
        return None


class NotifyFdSource(EventSource):
    """Async-notification FDs (per-connection or the shared wake FD)."""

    name = "notify-fd"

    def matches(self, pollable) -> bool:
        return isinstance(pollable, NotifyFd)

    def on_event(self, pollable, owner) -> Generator:
        yield from self.worker._notify_fd_event(pollable)
        return None


class ConnSource(EventSource):
    """Established connection sockets (handshake / request / response)."""

    name = "socket"

    def matches(self, pollable) -> bool:
        return pollable in self.worker.conns

    def on_event(self, pollable, owner) -> Generator:
        yield from self.worker._socket_event(self.worker.conns[pollable])
        return None


# -- deadline + stage sources ---------------------------------------------------

class AsyncQueueSource(EventSource):
    """The kernel-bypass async event queue (paper section 3.4):
    pending entries force a zero timeout; the stage drains the queue."""

    name = "async-queue"
    has_stage = True

    def next_timeout(self, now: float) -> Optional[float]:
        return 0.0 if self.worker.async_queue else None

    def on_pass(self, owner) -> Generator:
        yield from self.worker._drain_async_queue()
        return None

    def stats(self) -> dict:
        d = super().stats()
        q = self.worker.async_queue
        d.update(enqueued=q.enqueued, processed=q.processed)
        return d


class RetrySource(EventSource):
    """Backed-off resubmissions: sleep only until the earliest retry
    is due; the stage re-runs due retries."""

    name = "retries"
    has_stage = True

    def next_timeout(self, now: float) -> Optional[float]:
        retries = self.worker.retries
        if not retries:
            return None
        due = min(c.retry_not_before for c, _ in retries)
        return max(0.0, due - now)

    def on_pass(self, owner) -> Generator:
        yield from self.worker._process_retries()
        return None


class HeuristicSource(EventSource):
    """The integrated heuristic polling scheme (sections 3.3/4.3) as a
    reactor source: keeps the loop executing (spin timeout) while
    requests are in flight or queued on admission, and runs the
    efficiency/timeliness check as its end-of-pass stage. The worker
    also invokes :meth:`check` after every handler dispatch — the
    paper's 'wherever a crypto operation may be involved'."""

    name = "heuristic"
    has_stage = True

    def __init__(self, worker: "Worker", poller) -> None:
        super().__init__(worker)
        self.poller = poller

    def next_timeout(self, now: float) -> Optional[float]:
        eng = self.worker.engine
        if eng.inflight.total > 0 or eng.admission_queued > 0:
            return SPIN_TIMEOUT
        return None

    def check(self, owner) -> Generator:
        t0 = self.worker.sim.now
        jobs = yield from self.poller.check(owner=owner)
        self.busy += self.worker.sim.now - t0
        return jobs

    def on_pass(self, owner) -> Generator:
        yield from self.check(owner)
        return None

    def stats(self) -> dict:
        d = super().stats()
        d.update(polls=self.poller.polls,
                 efficiency_polls=self.poller.efficiency_polls,
                 timeliness_polls=self.poller.timeliness_polls)
        return d


# -- background retrieval sources ------------------------------------------------

class TimerPollSource(EventSource):
    """The timer polling thread as a source: start/stop map onto the
    thread's own lifecycle (stop interrupts the sleeping process, so a
    killed worker strands no stale tick against a dead engine)."""

    name = "timer-poll"

    def __init__(self, worker: "Worker", thread) -> None:
        super().__init__(worker)
        self.thread = thread

    def start(self) -> None:
        self.thread.start()

    def stop(self) -> None:
        self.thread.stop()

    def stats(self) -> dict:
        d = super().stats()
        d.update(polls=self.thread.polls,
                 effective_polls=self.thread.effective_polls)
        return d


class InterruptSource(EventSource):
    """The interrupt retriever as a source. Arming happens at
    construction (the worker must never miss a completion between its
    own construction and ``start()``); stop unhooks the ring callbacks
    so coalescing interrupts fizzle instead of dispatching into a dead
    engine."""

    name = "interrupt"

    def __init__(self, worker: "Worker", retriever) -> None:
        super().__init__(worker)
        self.retriever = retriever

    def stop(self) -> None:
        self.retriever.disarm()

    def stats(self) -> dict:
        d = super().stats()
        d.update(interrupts=self.retriever.interrupts)
        return d


# -- engine end-of-pass sources ---------------------------------------------------

class BatchFlushSource(EventSource):
    """End-of-pass batch flush: ops the handlers coalesced this pass go
    out in one doorbell/RPC. Submissions never wait past the current
    loop pass, so batching adds no cross-pass latency. Registered only
    when submission batching is configured."""

    name = "batch-flush"
    has_stage = True

    def on_pass(self, owner) -> Generator:
        eng = self.worker.engine
        if eng.queued_batch_ops:
            yield from eng.flush_batch(owner=owner)
        return None


class AdmissionSource(EventSource):
    """End-of-pass admission drain: admit queued ops into the capacity
    completions freed this pass. Registered only when engine queueing
    (admission cap / arbitration / budgets) is enabled."""

    name = "admission"
    has_stage = True

    def on_pass(self, owner) -> Generator:
        eng = self.worker.engine
        if eng.admission_queued:
            yield from eng.admit_queued(owner=owner)
        return None


class DrainPassSource(EventSource):
    """Graceful-drain stage: while draining, fail queued engine work
    over to software and poll eagerly so the last connections finish;
    exits the loop once the worker is fully drained."""

    name = "drain"
    has_stage = True

    def on_pass(self, owner) -> Generator:
        w = self.worker
        if not w.draining:
            return None
        yield from w._drain_pass()
        if w.drained:
            # Old generation finished its last connection: exit; the
            # supervisor retires the lease epoch.
            w.running = False
        return None


# -- background sweep sources -------------------------------------------------------

class FailoverSource(EventSource):
    """Section 4.3's failover timer: if no retrieval poll fired during
    the last interval but requests are in flight, poll once. Generic
    over the retrieval scheme — ``polls_fn`` reads whichever poll
    counter the worker's retrieval source maintains — and inert (the
    sweep skips) when the worker has no retrieval scheme at all, so a
    failover timer configured under any notify/poll mode is safe."""

    name = "failover"

    def __init__(self, worker: "Worker", interval: float,
                 polls_fn=None) -> None:
        super().__init__(worker)
        self.interval = interval
        self.polls_fn = polls_fn
        self.sweeps = 0
        self.rescue_polls = 0
        self._proc = None

    def start(self) -> None:
        self._proc = self.worker.sim.process(
            self._run(), name=f"w{self.worker.worker_id}-failover")

    # stop(): nothing to do — the sweep observes ``worker.running`` and
    # exits at its next tick (interrupting it would perturb the event
    # heap for no benefit; a dead worker's sweep is inert).

    def _run(self) -> Generator:
        w = self.worker
        last_polls = 0
        while w.running:
            yield w.sim.timeout(self.interval)
            self.sweeps += 1
            if self.polls_fn is None:
                continue  # no retrieval scheme to back up
            if (self.polls_fn() == last_polls
                    and (w.engine.inflight.total > 0
                         or w.engine.admission_queued > 0)):
                yield from w.engine.poll_and_dispatch(owner="failover")
                self.rescue_polls += 1
            last_polls = self.polls_fn()

    def stats(self) -> dict:
        d = super().stats()
        d.update(sweeps=self.sweeps, rescue_polls=self.rescue_polls)
        return d


class WatchdogSource(EventSource):
    """Graceful-degradation sweep: expire in-flight requests past their
    deadline (section 4.3's failover generalized to hardware faults)
    and rescue connections stuck in TLS-ASYNC — either the notification
    was lost (response ready, handler never ran) or the request itself
    vanished (e.g. wiped by an endpoint reset)."""

    name = "watchdog"

    def __init__(self, worker: "Worker", interval: float) -> None:
        super().__init__(worker)
        self.interval = interval
        self.sweeps = 0
        self._proc = None

    def start(self) -> None:
        self._proc = self.worker.sim.process(
            self._run(), name=f"w{self.worker.worker_id}-watchdog")

    # stop(): tick-exit, same rationale as FailoverSource.

    def _run(self) -> Generator:
        w = self.worker
        stuck_age = w.engine.request_deadline + 2 * self.interval
        while w.running:
            yield w.sim.timeout(self.interval)
            self.sweeps += 1
            delivered = yield from w.engine.check_timeouts(owner=w)
            rescued = 0
            for conn in list(w.conns.values()):
                if not conn.in_async or conn.async_since is None:
                    continue
                job = conn.ssl.job
                if job is None or w.sim.now - conn.async_since <= stuck_age:
                    continue
                if job.response_ready:
                    # Response delivered but the handler never ran:
                    # reschedule it directly.
                    conn.retry_not_before = 0.0
                    w.retries.append((conn, conn.async_token))
                    rescued += 1
                elif (job.state.name == "PAUSED"
                        and not w.engine.is_pending(job)):
                    ok = yield from w.engine.fail_over_job(job, owner=w)
                    if ok:
                        rescued += 1
            w.stub_status.watchdog_rescues += rescued
            w._refresh_degradation()
            if (delivered or rescued) and w.wake_fd is not None:
                # Deliveries happened outside the loop; make sure a
                # blocked epoll_wait sees the queued notifications.
                w.wake_fd.write_event()

    def stats(self) -> dict:
        d = super().stats()
        d.update(sweeps=self.sweeps,
                 rescues=self.worker.stub_status.watchdog_rescues)
        return d
