"""Nginx-style configuration text parser (artifact appendix A.7).

QTLS extends Nginx's engine setting into an *SSL Engine Framework*
configured directly in the conf file. This module parses that syntax::

    worker_processes 8;
    ssl_engine {
        use qat_engine;
        default_algorithm RSA,EC,DH,PKEY_CRYPTO;
        qat_engine {
            qat_offload_mode async;
            qat_notify_mode poll;
            qat_poll_mode heuristic;
            qat_heuristic_poll_asym_threshold 48;
            qat_heuristic_poll_sym_threshold 24;
        }
    }

Unknown directives raise, like nginx's config check does.
"""

from __future__ import annotations

import re
from typing import Dict, List, Union

from .config import ServerConfig, SslEngineConfig

__all__ = ["parse_conf", "server_config_from_text", "ConfError"]

Block = Dict[str, Union[List[str], "Block"]]


class ConfError(ValueError):
    """Malformed or unknown configuration."""


_TOKEN = re.compile(r"""
    (?P<comment>\#[^\n]*)
  | (?P<brace_open>\{)
  | (?P<brace_close>\})
  | (?P<semi>;)
  | (?P<word>[^\s{};#]+)
  | (?P<space>\s+)
""", re.VERBOSE)


def _tokenize(text: str):
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if m is None:  # pragma: no cover - regex covers all chars
            raise ConfError(f"cannot tokenize near {text[pos:pos + 20]!r}")
        pos = m.end()
        kind = m.lastgroup
        if kind in ("comment", "space"):
            continue
        yield kind, m.group()


def parse_conf(text: str) -> Block:
    """Parse conf text into nested ``{directive: args-or-block}``."""
    stack: List[Block] = [{}]
    words: List[str] = []
    for kind, tok in _tokenize(text):
        if kind == "word":
            words.append(tok)
        elif kind == "semi":
            if not words:
                raise ConfError("empty directive (stray ';')")
            stack[-1][words[0]] = words[1:]
            words = []
        elif kind == "brace_open":
            if not words:
                raise ConfError("block without a name")
            block: Block = {}
            stack[-1][words[0]] = block
            stack.append(block)
            words = []
        else:  # brace_close
            if words:
                raise ConfError(f"directive {words[0]!r} missing ';'")
            if len(stack) == 1:
                raise ConfError("unbalanced '}'")
            stack.pop()
    if len(stack) != 1:
        raise ConfError("unbalanced '{'")
    if words:
        raise ConfError(f"directive {words[0]!r} missing ';'")
    return stack[0]


def _one(args: List[str], directive: str) -> str:
    if len(args) != 1:
        raise ConfError(f"{directive} expects exactly one argument")
    return args[0]


def server_config_from_text(text: str) -> ServerConfig:
    """Build a :class:`ServerConfig` from appendix-A.7-style conf text."""
    tree = parse_conf(text)
    cfg = ServerConfig()
    engine = SslEngineConfig(use_engine="")

    for directive, value in tree.items():
        if directive == "worker_processes":
            cfg.worker_processes = int(_one(value, directive))
        elif directive == "load_module":
            continue  # informational (the ssl_engine module .so)
        elif directive == "ssl_engine":
            if not isinstance(value, dict):
                raise ConfError("ssl_engine must be a block")
            engine = _parse_ssl_engine(value)
        elif directive == "ssl_ciphers":
            cfg.suites = tuple(_one(value, directive).split(":"))
        elif directive == "ssl_ecdh_curve":
            cfg.curves = tuple(_one(value, directive).split(":"))
        elif directive == "ssl_protocols":
            proto = _one(value, directive)
            if proto not in ("TLSv1.2", "TLSv1.3"):
                raise ConfError(f"unsupported protocol {proto!r}")
            cfg.tls_version = "1.3" if proto == "TLSv1.3" else "1.2"
        elif directive == "ssl_session_cache":
            cfg.session_cache_enabled = _one(value, directive) != "off"
        elif directive == "ssl_asynch_notify":
            mode = _one(value, directive)
            if mode not in ("fd", "queue"):
                raise ConfError(f"unknown notify mode {mode!r}")
            cfg.async_notify_mode = mode
        elif directive == "keepalive_timeout":
            cfg.keepalive = _one(value, directive) != "0"
        elif directive == "worker_respawn":
            cfg.worker_respawn = (
                _one(value, directive) not in ("off", "0", "false"))
        elif directive == "max_respawns":
            budget = int(_one(value, directive))
            if budget < 0:
                raise ConfError(
                    f"max_respawns must be >= 0, got {budget}")
            cfg.max_respawns = budget
        elif directive == "worker_drain_timeout":
            timeout = float(_one(value, directive))
            if timeout <= 0:
                raise ConfError(
                    f"worker_drain_timeout must be positive, got {timeout}")
            cfg.worker_drain_timeout = timeout
        else:
            raise ConfError(f"unknown directive {directive!r}")

    cfg.ssl_engine = engine
    cfg.validate()
    return cfg


def _parse_ssl_engine(block: Block) -> SslEngineConfig:
    engine = SslEngineConfig(use_engine="")
    for directive, value in block.items():
        if directive == "use":
            engine.use_engine = _one(value, directive)
        elif directive == "offload_backend":
            engine.offload_backend = _one(value, directive)
        elif directive == "default_algorithm":
            engine.default_algorithm = tuple(
                a for a in _one(value, directive).split(",") if a)
        elif directive == "qat_engine":
            if not isinstance(value, dict):
                raise ConfError("qat_engine must be a block")
            _parse_qat_engine(value, engine)
        elif directive == "remote_accelerator":
            if not isinstance(value, dict):
                raise ConfError("remote_accelerator must be a block")
            _parse_remote_accelerator(value, engine)
        elif directive == "offload_admission_limit":
            limit = int(_one(value, directive))
            if limit < 1:
                raise ConfError(
                    f"offload_admission_limit must be >= 1, got {limit} "
                    "(omit the directive to disable admission control)")
            engine.offload_admission_limit = limit
        elif directive == "offload_sched_policy":
            policy = _one(value, directive)
            from ..offload.scheduler import SCHED_POLICIES
            if policy not in SCHED_POLICIES:
                raise ConfError(
                    f"unknown scheduling policy {policy!r}; expected "
                    f"{', '.join(SCHED_POLICIES)}")
            engine.offload_sched_policy = policy
        elif directive == "offload_sched_weights":
            engine.offload_sched_weights = _parse_sched_weights(
                _one(value, directive))
        elif directive == "offload_conn_budget":
            budget = int(_one(value, directive))
            if budget < 1:
                raise ConfError(
                    f"offload_conn_budget must be >= 1, got {budget} "
                    "(omit the directive to disable per-connection "
                    "budgets)")
            engine.offload_conn_budget = budget
        else:
            raise ConfError(f"unknown ssl_engine directive {directive!r}")
    return engine


def _parse_sched_weights(spec: str) -> Dict[str, int]:
    """``class=weight[,class=weight...]`` — e.g.
    ``handshake-asym=8,prf=2,record-cipher=1``."""
    from ..offload.scheduler import DEFAULT_WEIGHTS
    weights: Dict[str, int] = {}
    for part in spec.split(","):
        if not part:
            continue
        name, sep, raw = part.partition("=")
        if not sep or not raw:
            raise ConfError(
                f"malformed weight {part!r}; expected class=weight")
        if name not in DEFAULT_WEIGHTS:
            raise ConfError(
                f"unknown scheduling class {name!r}; expected one of "
                f"{', '.join(sorted(DEFAULT_WEIGHTS))}")
        try:
            weight = int(raw)
        except ValueError:
            raise ConfError(
                f"weight for {name!r} must be an integer, "
                f"got {raw!r}") from None
        if weight < 1:
            raise ConfError(f"weight for {name!r} must be >= 1")
        weights[name] = weight
    if not weights:
        raise ConfError("offload_sched_weights needs at least one "
                        "class=weight pair")
    return weights


def _parse_remote_accelerator(block: Block,
                              engine: SslEngineConfig) -> None:
    for directive, value in block.items():
        if directive == "processors":
            engine.remote_processors = int(_one(value, directive))
        elif directive == "window":
            engine.remote_window = int(_one(value, directive))
        elif directive == "link_latency":
            engine.remote_link_latency = float(_one(value, directive))
        elif directive == "link_bandwidth":
            engine.remote_link_bandwidth = float(_one(value, directive))
        elif directive == "service_scale":
            engine.remote_service_scale = float(_one(value, directive))
        else:
            raise ConfError(
                f"unknown remote_accelerator directive {directive!r}")


def _parse_qat_engine(block: Block, engine: SslEngineConfig) -> None:
    for directive, value in block.items():
        if directive == "qat_offload_mode":
            engine.qat_offload_mode = _one(value, directive)
        elif directive == "qat_notify_mode":
            engine.qat_notify_mode = _one(value, directive)
        elif directive == "qat_poll_mode":
            mode = _one(value, directive)
            engine.qat_poll_mode = mode
        elif directive == "qat_timer_poll_interval":
            engine.qat_timer_poll_interval = float(_one(value, directive))
        elif directive == "qat_heuristic_poll_asym_threshold":
            engine.qat_heuristic_poll_asym_threshold = int(
                _one(value, directive))
        elif directive == "qat_heuristic_poll_sym_threshold":
            engine.qat_heuristic_poll_sym_threshold = int(
                _one(value, directive))
        elif directive == "qat_failover_timer":
            engine.qat_failover_timer = float(_one(value, directive))
        elif directive == "qat_request_deadline":
            engine.qat_request_deadline = float(_one(value, directive))
        elif directive == "qat_watchdog_interval":
            engine.qat_watchdog_interval = float(_one(value, directive))
        elif directive == "qat_submit_max_retries":
            engine.qat_submit_max_retries = int(_one(value, directive))
        elif directive == "qat_breaker_failure_threshold":
            engine.qat_breaker_failure_threshold = int(
                _one(value, directive))
        elif directive == "qat_breaker_reset_timeout":
            engine.qat_breaker_reset_timeout = float(_one(value, directive))
        elif directive == "qat_software_fallback":
            engine.qat_software_fallback = (
                _one(value, directive) not in ("off", "0", "false"))
        elif directive == "qat_batch_size":
            engine.qat_batch_size = int(_one(value, directive))
        elif directive == "qat_batch_timeout":
            engine.qat_batch_timeout = float(_one(value, directive))
        elif directive == "qat_instance_policy":
            policy = _one(value, directive)
            if policy not in ("static", "shared", "dynamic"):
                raise ConfError(
                    f"unknown instance policy {policy!r}; expected "
                    "static, shared or dynamic")
            engine.qat_instance_policy = policy
        elif directive == "qat_rebalance_interval":
            interval = float(_one(value, directive))
            if interval <= 0:
                raise ConfError(
                    f"qat_rebalance_interval must be positive, "
                    f"got {interval}")
            engine.qat_rebalance_interval = interval
        else:
            raise ConfError(f"unknown qat_engine directive {directive!r}")
