"""Server configuration, including the SSL Engine Framework settings
(artifact appendix A.7): offload mode, notify mode, poll mode, and the
heuristic thresholds — all the knobs the ``ssl_engine`` block of the
paper's extended Nginx conf exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["SslEngineConfig", "ServerConfig"]


@dataclass
class SslEngineConfig:
    """The ``ssl_engine { qat_engine { ... } }`` block."""

    use_engine: str = "qat_engine"                # or "" for software
    #: Which accelerator sits behind the engine: "qat" (the on-board
    #: card), "remote" (network-attached crypto service) or "software"
    #: (engine enabled but every op runs on the CPU).
    offload_backend: str = "qat"
    default_algorithm: Tuple[str, ...] = ("RSA", "EC", "PKEY_CRYPTO",
                                          "CIPHER")
    #: "sync" = straight offload; "async" = the QTLS framework.
    qat_offload_mode: str = "async"
    #: How QAT completions reach software: "poll" (userspace polling,
    #: QTLS's choice) or "interrupt" (kernel IRQ path — modelled so the
    #: section 3.3 trade-off can be measured).
    qat_notify_mode: str = "poll"
    #: "timer" = independent polling thread; "heuristic" = section 3.3.
    qat_poll_mode: str = "heuristic"
    qat_timer_poll_interval: float = 10e-6
    qat_heuristic_poll_asym_threshold: int = 48
    qat_heuristic_poll_sym_threshold: int = 24
    #: Failover timer for the heuristic scheme (section 4.3).
    qat_failover_timer: float = 5e-3
    #: QAT crypto instances assigned to each worker (section 2.3:
    #: multiple instances from different endpoints employ more
    #: computation engines).
    qat_instances_per_worker: int = 1
    #: How the instance pool apportions instances among workers:
    #: "static" (dedicated consecutive chunks, the paper's deployment),
    #: "shared" (any worker submits to any instance, paying an
    #: arbitration cost per submit) or "dynamic" (periodic rebalance
    #: migrates leases toward pressured workers).
    qat_instance_policy: str = "static"
    #: Rebalance tick period for the dynamic policy.
    qat_rebalance_interval: float = 2e-3
    #: Graceful-degradation knobs (robustness layer). The deadline is
    #: generous by default — worst-case legitimate queueing at card
    #: saturation is a few ms, so healthy runs never trip it.
    qat_request_deadline: float = 25e-3
    #: Worker watchdog sweep interval (0 disables the watchdog).
    qat_watchdog_interval: float = 5e-3
    qat_submit_max_retries: int = 32
    qat_breaker_failure_threshold: int = 5
    qat_breaker_reset_timeout: float = 10e-3
    #: Complete failed/expired offload ops on the CPU instead of
    #: surfacing OffloadTimeout to the TLS layer.
    qat_software_fallback: bool = True
    #: Submission batching: coalesce up to this many queued ops into
    #: one backend submit call (1 = no batching, the paper's behavior).
    qat_batch_size: int = 1
    #: Flush an under-filled batch this long after its oldest op was
    #: enqueued, so latency-sensitive handshakes never stall.
    qat_batch_timeout: float = 50e-6
    #: Per-worker admission control (any backend): at most this many
    #: concurrently offloaded ops; excess submissions wait in a FIFO
    #: backpressure queue inside the engine instead of bouncing off
    #: full rings. 0 disables (unbounded, the paper's behaviour).
    offload_admission_limit: int = 0
    #: Arbitration policy for the class-aware admission lanes: "fifo"
    #: (global arrival order — bit-for-bit the pre-scheduler engine),
    #: "strict-priority" (handshake-asym > prf > record-cipher, with a
    #: starvation-proof deficit fallback) or "weighted-fair" (deficit
    #: round robin by ``offload_sched_weights``).
    offload_sched_policy: str = "fifo"
    #: Weighted-fair quanta per scheduling class (ops per round);
    #: unlisted classes keep their defaults (handshake-asym=8, prf=2,
    #: record-cipher=1).
    offload_sched_weights: Dict[str, int] = field(default_factory=dict)
    #: Per-connection in-flight budget: at most this many ops from one
    #: connection concurrently on the accelerator path; excess ops wait
    #: in their class lane. 0 disables (unbounded).
    offload_conn_budget: int = 0
    #: Remote-accelerator backend (offload_backend "remote"): service
    #: processor pool, per-worker credit window, link characteristics
    #: and a scale factor on the QAT-calibrated service times.
    remote_processors: int = 8
    remote_window: int = 256
    remote_link_latency: float = 20e-6
    remote_link_bandwidth: float = 25e9
    remote_service_scale: float = 1.0

    def validate(self) -> None:
        if self.use_engine not in ("", "qat_engine"):
            raise ValueError(f"unknown engine {self.use_engine!r}")
        if self.offload_backend not in ("qat", "remote", "software"):
            raise ValueError(
                f"unknown offload backend {self.offload_backend!r}")
        if (self.offload_backend == "remote"
                and self.qat_notify_mode == "interrupt"):
            raise ValueError(
                "interrupt notify mode requires the qat backend "
                "(a remote service has no local IRQ line)")
        if self.qat_batch_size < 1:
            raise ValueError("batch size must be >= 1")
        if self.qat_batch_timeout <= 0:
            raise ValueError("batch timeout must be positive")
        if self.remote_processors < 1:
            raise ValueError("need at least one remote processor")
        if self.remote_window < 1:
            raise ValueError("remote credit window must be >= 1")
        if self.remote_link_latency < 0:
            raise ValueError("remote link latency must be >= 0")
        if self.remote_link_bandwidth <= 0:
            raise ValueError("remote link bandwidth must be positive")
        if self.remote_service_scale <= 0:
            raise ValueError("remote service scale must be positive")
        if self.qat_offload_mode not in ("sync", "async"):
            raise ValueError(
                f"unknown offload mode {self.qat_offload_mode!r}")
        if self.qat_notify_mode not in ("poll", "interrupt"):
            raise ValueError(
                f"unknown notify mode {self.qat_notify_mode!r}")
        if self.qat_poll_mode not in ("timer", "heuristic"):
            raise ValueError(f"unknown poll mode {self.qat_poll_mode!r}")
        if self.qat_timer_poll_interval <= 0:
            raise ValueError("poll interval must be positive")
        if (self.qat_heuristic_poll_asym_threshold < 1
                or self.qat_heuristic_poll_sym_threshold < 1):
            raise ValueError("heuristic thresholds must be >= 1")
        if self.qat_instances_per_worker < 1:
            raise ValueError("need at least one instance per worker")
        if self.qat_instance_policy not in ("static", "shared", "dynamic"):
            raise ValueError(
                f"unknown instance policy {self.qat_instance_policy!r}")
        if (self.qat_instance_policy != "static"
                and self.qat_notify_mode == "interrupt"):
            raise ValueError(
                "interrupt notify mode requires the static instance "
                "policy (IRQ callbacks are armed on dedicated instances)")
        if self.qat_rebalance_interval <= 0:
            raise ValueError("rebalance interval must be positive")
        if self.offload_admission_limit < 0:
            raise ValueError("admission limit must be >= 0 (0 disables)")
        from ..offload.scheduler import DEFAULT_WEIGHTS, SCHED_POLICIES
        if self.offload_sched_policy not in SCHED_POLICIES:
            raise ValueError(
                f"unknown scheduling policy {self.offload_sched_policy!r}; "
                f"expected one of {', '.join(SCHED_POLICIES)}")
        for name, weight in self.offload_sched_weights.items():
            if name not in DEFAULT_WEIGHTS:
                raise ValueError(
                    f"unknown scheduling class {name!r}; expected one of "
                    f"{', '.join(sorted(DEFAULT_WEIGHTS))}")
            if not isinstance(weight, int) or weight < 1:
                raise ValueError(
                    f"scheduling weight for {name!r} must be an "
                    "integer >= 1")
        if self.offload_conn_budget < 0:
            raise ValueError(
                "per-connection budget must be >= 0 (0 disables)")
        if self.qat_request_deadline <= 0:
            raise ValueError("request deadline must be positive")
        if self.qat_watchdog_interval < 0:
            raise ValueError("watchdog interval must be >= 0")
        if self.qat_submit_max_retries < 1:
            raise ValueError("need at least one submit attempt")
        if self.qat_breaker_failure_threshold < 1:
            raise ValueError("breaker failure threshold must be >= 1")
        if self.qat_breaker_reset_timeout <= 0:
            raise ValueError("breaker reset timeout must be positive")


@dataclass
class ServerConfig:
    """Top-level Nginx-like configuration."""

    worker_processes: int = 1
    listen: str = "https"
    #: TLS suites enabled, in server preference order (names).
    suites: Tuple[str, ...] = ("TLS-RSA",)
    curves: Tuple[str, ...] = ("P-256",)
    rsa_bits: int = 2048
    #: TLS protocol version: "1.2" or "1.3".
    tls_version: str = "1.2"
    session_cache_enabled: bool = True
    session_lifetime: float = 3600.0
    #: Issue stateless session tickets (RFC 5077) alongside the cache.
    session_tickets: bool = False
    keepalive: bool = True
    #: Async-notification scheme: "fd" (epoll-monitored notification
    #: FDs) or "queue" (kernel-bypass async queue).
    async_notify_mode: str = "fd"
    #: OpenSSL async implementation: "fiber" or "stack" (section 4.1).
    async_impl: str = "fiber"
    #: Share one notification FD across all async jobs of a connection
    #: (the section 4.4 optimization). False allocates one per job.
    share_notify_fd: bool = True
    #: Lifecycle supervision (nginx master behaviour): respawn a
    #: crashed worker on the same core. Off leaves the slot dead and
    #: reclaims its instance leases for the surviving workers.
    worker_respawn: bool = True
    #: Per-slot respawn budget; a worker crashing more than this many
    #: times stays down (crash-loop protection).
    max_respawns: int = 5
    #: Graceful-reload drain deadline: an old-generation worker still
    #: holding connections past it is force-aborted.
    worker_drain_timeout: float = 50e-3
    ssl_engine: SslEngineConfig = field(default_factory=SslEngineConfig)

    def validate(self) -> None:
        if self.worker_processes < 1:
            raise ValueError("need at least one worker")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if self.worker_drain_timeout <= 0:
            raise ValueError("worker drain timeout must be positive")
        if self.tls_version not in ("1.2", "1.3"):
            raise ValueError(f"unsupported TLS version {self.tls_version!r}")
        if self.async_notify_mode not in ("fd", "queue"):
            raise ValueError(
                f"unknown notify mode {self.async_notify_mode!r}")
        if self.async_impl not in ("fiber", "stack"):
            raise ValueError(f"unknown async impl {self.async_impl!r}")
        self.ssl_engine.validate()

    @property
    def uses_offload(self) -> bool:
        """An accelerator-backed engine is configured (any backend)."""
        return (self.ssl_engine.use_engine == "qat_engine"
                and self.ssl_engine.offload_backend != "software")

    @property
    def uses_qat(self) -> bool:
        """The engine is backed by the on-board QAT card specifically
        (allocates instances, supports the interrupt notify mode)."""
        return (self.uses_offload
                and self.ssl_engine.offload_backend == "qat")

    @property
    def uses_remote(self) -> bool:
        return (self.uses_offload
                and self.ssl_engine.offload_backend == "remote")

    @property
    def async_offload(self) -> bool:
        return (self.uses_offload
                and self.ssl_engine.qat_offload_mode == "async")
