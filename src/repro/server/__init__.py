"""Event-driven TLS server (the paper's async-mode Nginx equivalent)."""

from .conf_text import ConfError, parse_conf, server_config_from_text
from .config import ServerConfig, SslEngineConfig
from .connection import ConnState, ServerConnection
from .http import HttpRequest, encode_request, parse_request, response_body
from .master import TlsServer
from .notify.async_queue import AsyncEventQueue
from .polling.heuristic import HeuristicPoller
from .polling.timer_thread import TimerPollingThread
from .stub_status import StubStatus
from .worker import Worker, WorkerMetrics

__all__ = [
    "ServerConfig", "SslEngineConfig", "TlsServer", "Worker",
    "WorkerMetrics", "ServerConnection", "ConnState", "StubStatus",
    "HeuristicPoller", "TimerPollingThread", "AsyncEventQueue",
    "HttpRequest", "encode_request", "parse_request", "response_body",
    "parse_conf", "server_config_from_text", "ConfError",
]
