"""QAT response retrieval schemes (paper sections 3.3 / 5.6)."""

from .heuristic import HeuristicPoller
from .timer_thread import TimerPollingThread

__all__ = ["HeuristicPoller", "TimerPollingThread"]
