"""The timer-based polling thread (the QAT Engine default).

An independent thread per worker polls the assigned QAT instance at a
fixed interval. Pinned to the same core as its worker (as in the
paper's testbed), so every tick context-switches the worker out — the
overhead quantified in Figure 12, along with the interval dilemma:
10 us wastes cycles on ineffective polls, 1 ms adds latency and can
strangle throughput at low concurrency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...offload.engine import AsyncOffloadEngine
from ...sim.process import Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from ...sim.kernel import Simulator

__all__ = ["TimerPollingThread"]


class TimerPollingThread:
    """Polls the engine every ``interval`` seconds on the worker's core."""

    def __init__(self, sim: "Simulator", engine: AsyncOffloadEngine,
                 interval: float = 10e-6, name: str = "poller",
                 wake=None) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.engine = engine
        self.interval = interval
        self.name = name
        #: Called after dispatching responses: retrieval happens outside
        #: the worker's event loop, so a blocked worker must be woken to
        #: process queue-mode notifications.
        self.wake = wake
        self.polls = 0
        self.effective_polls = 0
        self._running = False
        #: Parked in the inter-tick timeout (vs mid-poll on the core).
        self._sleeping = False
        self._proc = None

    def start(self) -> None:
        if self._running:
            raise RuntimeError("polling thread already started")
        self._running = True
        self._proc = self.sim.process(self._run(), name=self.name)

    def stop(self) -> None:
        """Stop polling: flag the loop and, if the process is parked in
        the inter-tick sleep, interrupt it — so a killed/reloaded
        worker strands no stale tick scheduled against a dead engine.
        A thread caught *mid-poll* instead finishes charging the poll
        it already started (a real process dies mid-syscall, not
        mid-cycle-refund) and exits at the loop check."""
        self._running = False
        if (self._proc is not None and self._proc.is_alive
                and self._sleeping):
            self._proc.interrupt("polling thread stopped")
            self._proc = None

    def _run(self):
        try:
            while self._running:
                self._sleeping = True
                yield self.sim.timeout(self.interval)
                self._sleeping = False
                if not self._running:
                    return
                # Each tick schedules the thread onto the shared core:
                # the owner identity differing from the worker's
                # charges the context switch.
                self.polls += 1
                jobs = yield from self.engine.poll_and_dispatch(owner=self)
                if jobs:
                    self.effective_polls += 1
                    if self.wake is not None:
                        self.wake()
        except Interrupt:
            return  # stop() cancelled the pending tick
