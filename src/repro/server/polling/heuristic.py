"""The heuristic polling scheme (paper sections 3.3 and 4.3).

Integrated into the application (no independent polling thread), it
checks two constraints wherever a crypto operation may be involved or
TCactive may change:

- **efficiency**: poll when the number of inflight requests Rtotal
  reaches a threshold — 48 while asymmetric requests are in flight
  (they take much longer, so more responses can be coalesced), 24
  otherwise;
- **timeliness**: poll immediately once Rtotal equals the number of
  active TLS connections — every active connection is waiting on the
  accelerator, so the process would otherwise stall.

The Rasym/Rcipher/Rprf counters are read straight from the engine's
:class:`~repro.offload.inflight.InflightCounters` — the single source
of truth shared with the class-aware scheduler and stub_status; the
poller keeps no shadow per-category accounting.
"""

from __future__ import annotations

from typing import Generator

from ...offload.engine import AsyncOffloadEngine
from ..stub_status import StubStatus

__all__ = ["HeuristicPoller"]


class HeuristicPoller:
    """Application-integrated response retrieval."""

    def __init__(self, engine: AsyncOffloadEngine,
                 stub_status: StubStatus,
                 asym_threshold: int = 48, sym_threshold: int = 24) -> None:
        if asym_threshold < 1 or sym_threshold < 1:
            raise ValueError("thresholds must be >= 1")
        self.engine = engine
        self.stub_status = stub_status
        self.asym_threshold = asym_threshold
        self.sym_threshold = sym_threshold
        self.polls = 0
        self.efficiency_polls = 0
        self.timeliness_polls = 0

    # -- constraint checks --------------------------------------------------

    def should_poll(self) -> bool:
        r = self.engine.inflight
        total = r.total
        if total == 0:
            return False
        threshold = self.asym_threshold if r.asym > 0 else self.sym_threshold
        # Admission control caps the in-flight population: Rtotal can
        # never grow past the limit, so both constraints saturate there
        # (otherwise a limit below the threshold would never poll while
        # hundreds of connections wait in the admission queue).
        limit = self.engine.admission_limit
        if limit is not None:
            threshold = min(threshold, limit)
        if total >= threshold:
            return True
        # Non-default scheduling (priority lanes / connection budgets)
        # parks ops in the admission lanes even below the cap; poll
        # eagerly while lanes are backed up so freed capacity admits
        # the next policy-ordered op promptly. Gated on sched_active:
        # default fifo configs keep the historical poll cadence
        # bit-for-bit.
        if self.engine.sched_active and self.engine.admission_queued > 0:
            return True
        bound = self.stub_status.tls_active
        if limit is not None:
            bound = min(bound, limit)
        return total >= bound

    def check(self, owner: object) -> Generator:
        """Evaluate constraints; poll if either is met. Returns the
        jobs whose responses were dispatched (empty list otherwise).

        Called wherever a crypto op may be involved or TCactive may be
        updated — i.e. after every handler invocation.
        """
        if not self.should_poll():
            return []
        r = self.engine.inflight
        threshold = (self.asym_threshold if r.asym > 0
                     else self.sym_threshold)
        if r.total >= threshold:
            self.efficiency_polls += 1
        else:
            self.timeliness_polls += 1
            # Stall imminent: every active connection is waiting on
            # the accelerator. Push coalescing submissions out now —
            # batching them further would only idle the core.
            yield from self.engine.flush_batch(owner)
        self.polls += 1
        jobs = yield from self.engine.poll_and_dispatch(owner)
        return jobs
