"""Interrupt-driven response retrieval (the road not taken).

Section 3.3: "QAT responses can be retrieved through either interrupt
or polling. QTLS leverages userspace I/O ... where one userspace-based
polling operation has much less overhead than one kernel-based
interrupt. Therefore, QTLS selects polling."

This module implements the interrupt alternative so that choice can be
measured: each response batch raises a hardware interrupt, whose
service path (IRQ entry, kernel handler, wakeup) costs a full kernel
crossing plus handler work on the worker's core — far more than a
userspace ring poll.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...offload.engine import AsyncOffloadEngine

if TYPE_CHECKING:  # pragma: no cover
    from ...sim.kernel import Simulator

__all__ = ["InterruptRetriever", "IRQ_SERVICE_COST"]

#: Kernel work per interrupt beyond the mode switch: IRQ entry/exit,
#: the driver's top/bottom half, and the process wakeup.
IRQ_SERVICE_COST = 3.5e-6

#: The hardware coalesces interrupts that fire within this window
#: (typical NIC/accelerator moderation).
COALESCE_WINDOW = 2e-6


class InterruptRetriever:
    """Retrieves QAT responses via simulated hardware interrupts."""

    def __init__(self, sim: "Simulator", engine: AsyncOffloadEngine,
                 name: str = "irq", wake=None) -> None:
        self.sim = sim
        self.engine = engine
        self.name = name
        self.wake = wake  # wakes the worker loop (see timer_thread)
        self.interrupts = 0
        self._pending = False
        self._armed = False

    def arm(self) -> None:
        """Hook the rings of every instance this engine submits to
        (dedicated instances — the static policy enforces this)."""
        if self._armed:
            raise RuntimeError("interrupt retriever already armed")
        self._armed = True
        for drv in self.engine.backend.drivers:
            drv.instance.set_response_callback(self._on_response)

    def disarm(self) -> None:
        """Unhook every ring callback (worker death/teardown): a fresh
        incarnation arms its own retriever, and interrupts already
        coalescing fizzle instead of dispatching into a dead engine."""
        if not self._armed:
            return
        self._armed = False
        for drv in self.engine.backend.drivers:
            drv.instance.set_response_callback(None)

    def _on_response(self, _ring) -> None:
        if self._pending:
            return  # coalesced into the already-scheduled interrupt
        self._pending = True
        self.sim.process(self._service(), name=f"{self.name}-svc")

    def _service(self):
        # Interrupt moderation delay, then the service path.
        yield self.sim.timeout(COALESCE_WINDOW)
        self._pending = False
        if not self._armed:
            return  # disarmed while the interrupt was coalescing
        self.interrupts += 1
        core = self.engine.core
        yield from core.kernel_crossing(extra=IRQ_SERVICE_COST)
        # The handler drains the response rings and dispatches the
        # notifications (same downstream path as polling).
        jobs = yield from self.engine.poll_and_dispatch(owner=self)
        if jobs and self.wake is not None:
            self.wake()
