"""Big-integer helpers for the from-scratch public-key crypto.

Python integers are arbitrary precision, so "bigint" here means the
number-theoretic utilities RSA/ECC need: modular inverse, CRT, and the
octet-string conversions of PKCS#1 (I2OSP / OS2IP).
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["egcd", "modinv", "crt_pair", "i2osp", "os2ip", "bit_length",
           "byte_length"]


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclid: returns ``(g, x, y)`` with ``a*x + b*y == g``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    return old_r, old_s, old_t


def modinv(a: int, n: int) -> int:
    """Modular inverse of ``a`` mod ``n``; raises if not invertible."""
    # pow(a, -1, n) is the fast C path; it raises ValueError when gcd != 1.
    try:
        return pow(a, -1, n)
    except ValueError:
        raise ValueError(f"{a} is not invertible modulo {n}") from None


def crt_pair(mp: int, mq: int, p: int, q: int, qinv: int) -> int:
    """Garner's CRT recombination for RSA: given ``m mod p`` and
    ``m mod q``, return ``m mod p*q``.

    ``qinv`` must be ``q^-1 mod p`` (the PKCS#1 ``qInv`` coefficient).
    """
    h = (qinv * (mp - mq)) % p
    return mq + q * h


def bit_length(n: int) -> int:
    return n.bit_length()


def byte_length(n: int) -> int:
    """Octet length of ``n`` (at least 1, so 0 encodes as one byte)."""
    return max(1, (n.bit_length() + 7) // 8)


def i2osp(x: int, length: int) -> bytes:
    """PKCS#1 integer-to-octet-string; raises if ``x`` does not fit."""
    if x < 0:
        raise ValueError("negative integer")
    if x >= 1 << (8 * length):
        raise ValueError(f"integer too large for {length} octets")
    return x.to_bytes(length, "big")


def os2ip(octets: bytes) -> int:
    """PKCS#1 octet-string-to-integer."""
    return int.from_bytes(octets, "big")
