"""RSA from scratch: key generation, raw CRT exponentiation, and the
PKCS#1 v1.5 paddings used by TLS (EMSA for signatures, EME for the
RSA-wrapped premaster secret).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .bigint import byte_length, crt_pair, i2osp, modinv, os2ip
from .primes import generate_prime

__all__ = ["RsaPublicKey", "RsaPrivateKey", "generate_keypair",
           "sign_pkcs1v15", "verify_pkcs1v15",
           "encrypt_pkcs1v15", "decrypt_pkcs1v15", "RsaError"]


class RsaError(ValueError):
    """Raised on malformed ciphertexts, signatures or keys."""


# DER DigestInfo prefixes for EMSA-PKCS1-v1_5 (RFC 8017 section 9.2).
_DIGEST_INFO = {
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
    "sha256": bytes.fromhex("3031300d060960864801650304020105000420"),
    "sha384": bytes.fromhex("3041300d060960864801650304020205000430"),
    "sha512": bytes.fromhex("3051300d060960864801650304020305000440"),
}


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def size(self) -> int:
        """Modulus length in octets."""
        return byte_length(self.n)

    def raw_encrypt(self, m: int) -> int:
        if not 0 <= m < self.n:
            raise RsaError("message representative out of range")
        return pow(m, self.e, self.n)


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int
    dp: int
    dq: int
    qinv: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def size(self) -> int:
        return byte_length(self.n)

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    def raw_decrypt(self, c: int) -> int:
        """Private-key operation via CRT (the expensive op QAT offloads)."""
        if not 0 <= c < self.n:
            raise RsaError("ciphertext representative out of range")
        mp = pow(c, self.dp, self.p)
        mq = pow(c, self.dq, self.q)
        return crt_pair(mp, mq, self.p, self.q, self.qinv) % self.n


def generate_keypair(bits: int, rng: np.random.Generator,
                     e: int = 65537) -> RsaPrivateKey:
    """Generate an RSA keypair with a modulus of exactly ``bits`` bits."""
    if bits < 128 or bits % 2:
        raise RsaError("modulus size must be an even number of bits >= 128")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        if p < q:
            p, q = q, p  # PKCS#1 convention: p > q so qinv = q^-1 mod p
        phi = (p - 1) * (q - 1)
        try:
            d = modinv(e, phi)
        except ValueError:
            continue  # gcd(e, phi) != 1; extremely rare, draw again
        n = p * q
        if n.bit_length() != bits:
            continue
        return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q,
                             dp=d % (p - 1), dq=d % (q - 1),
                             qinv=modinv(q, p))


# -- EMSA-PKCS1-v1_5 signatures ------------------------------------------


def _emsa_encode(message: bytes, em_len: int, hash_name: str) -> bytes:
    try:
        prefix = _DIGEST_INFO[hash_name]
    except KeyError:
        raise RsaError(f"unsupported hash {hash_name!r}") from None
    digest = hashlib.new(hash_name, message).digest()
    t = prefix + digest
    if em_len < len(t) + 11:
        raise RsaError("intended encoded message length too short")
    ps = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + ps + b"\x00" + t


def sign_pkcs1v15(key: RsaPrivateKey, message: bytes,
                  hash_name: str = "sha256") -> bytes:
    """RSASSA-PKCS1-v1_5 signature (the TLS server-auth operation)."""
    em = _emsa_encode(message, key.size, hash_name)
    return i2osp(key.raw_decrypt(os2ip(em)), key.size)


def verify_pkcs1v15(key: RsaPublicKey, message: bytes, signature: bytes,
                    hash_name: str = "sha256") -> bool:
    """Verify an RSASSA-PKCS1-v1_5 signature; returns True/False."""
    if len(signature) != key.size:
        return False
    try:
        em = i2osp(key.raw_encrypt(os2ip(signature)), key.size)
        expected = _emsa_encode(message, key.size, hash_name)
    except RsaError:
        return False
    return em == expected


# -- EME-PKCS1-v1_5 encryption (RSA-wrapped premaster secret) -------------


def encrypt_pkcs1v15(key: RsaPublicKey, message: bytes,
                     rng: np.random.Generator) -> bytes:
    """RSAES-PKCS1-v1_5 encryption, used by the client to wrap the
    48-byte premaster secret in the TLS-RSA key exchange."""
    k = key.size
    if len(message) > k - 11:
        raise RsaError("message too long")
    ps_len = k - len(message) - 3
    # Padding string must be non-zero octets.
    ps = bytes(int(b) % 255 + 1 for b in rng.bytes(ps_len))
    em = b"\x00\x02" + ps + b"\x00" + message
    return i2osp(key.raw_encrypt(os2ip(em)), k)


def decrypt_pkcs1v15(key: RsaPrivateKey, ciphertext: bytes,
                     expected_len: Optional[int] = None) -> bytes:
    """RSAES-PKCS1-v1_5 decryption (server side of TLS-RSA).

    ``expected_len`` enables the constant-shape check TLS uses against
    Bleichenbacher-style oracles: on any padding error a random-looking
    value of the expected length should be substituted by the caller.
    """
    k = key.size
    if len(ciphertext) != k:
        raise RsaError("ciphertext length mismatch")
    em = i2osp(key.raw_decrypt(os2ip(ciphertext)), k)
    if em[0] != 0 or em[1] != 2:
        raise RsaError("decryption error")
    try:
        sep = em.index(0, 2)
    except ValueError:
        raise RsaError("decryption error") from None
    if sep < 10:  # at least 8 padding octets
        raise RsaError("decryption error")
    msg = em[sep + 1:]
    if expected_len is not None and len(msg) != expected_len:
        raise RsaError("decryption error")
    return msg
