"""Primality testing and prime generation for RSA key generation."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["is_prime", "generate_prime"]

# Small primes used for fast trial division before Miller-Rabin.
_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
                 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107,
                 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173]

# Deterministic Miller-Rabin witness sets (Sinclair / Jaeschke bounds).
_DETERMINISTIC_SETS = [
    (341531, (9345883071009581737,)),
    (1050535501, (336781006125, 9639812373923155)),
    (3215031751, (2, 3, 5, 7)),
    (3474749660383, (2, 3, 5, 7, 11, 13)),
    (341550071728321, (2, 3, 5, 7, 11, 13, 17)),
    (3825123056546413051, (2, 3, 5, 7, 11, 13, 17, 19, 23)),
    (318665857834031151167461, (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)),
]


def _miller_rabin(n: int, witnesses) -> bool:
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in witnesses:
        a %= n
        if a == 0:
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def is_prime(n: int, rng: Optional[np.random.Generator] = None,
             rounds: int = 40) -> bool:
    """Primality test: deterministic below ~3.3e24, Miller-Rabin above.

    For large ``n`` the error probability is at most 4^-rounds.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    for bound, witnesses in _DETERMINISTIC_SETS:
        if n < bound:
            return _miller_rabin(n, witnesses)
    if rng is None:
        rng = np.random.default_rng(0xC0FFEE ^ (n & 0xFFFFFFFF))
    witnesses = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37]
    extra = rounds - len(witnesses)
    if extra > 0:
        witnesses += [int(rng.integers(2, 1 << 62)) for _ in range(extra)]
    return _miller_rabin(n, witnesses)


def generate_prime(bits: int, rng: np.random.Generator) -> int:
    """Generate a random prime with exactly ``bits`` bits.

    The two top bits are forced to 1 so that the product of two such
    primes has exactly ``2*bits`` bits (the PKCS#1 convention).
    """
    if bits < 8:
        raise ValueError("prime size too small")
    nbytes = (bits + 7) // 8
    while True:
        raw = int.from_bytes(rng.bytes(nbytes), "big")
        raw &= (1 << bits) - 1
        raw |= (1 << (bits - 1)) | (1 << (bits - 2))  # force top bits
        raw |= 1                                       # force odd
        # March forward over odd numbers; re-randomize after a long run
        # to keep the distribution reasonable.
        candidate = raw
        for _ in range(512):
            if is_prime(candidate, rng):
                if candidate.bit_length() == bits:
                    return candidate
                break
            candidate += 2
