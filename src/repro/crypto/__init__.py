"""From-scratch crypto substrate for the QTLS reproduction.

Functional implementations of every primitive the paper's TLS stack
uses (RSA PKCS#1 v1.5, NIST prime & binary ECC, ECDSA, ECDH, AES-128
CBC, HMAC, TLS 1.2 PRF, HKDF), plus the provider abstraction that the
TLS and engine layers consume.
"""

from .bigint import i2osp, modinv, os2ip
from .ec import (INFINITY, BinaryCurve, Curve, EcError, Point, PrimeCurve,
                 get_curve, list_curves)
from .ops import CryptoOp, CryptoOpKind, OpCategory
from .provider import (CryptoProvider, KeyShare, ModeledCryptoProvider,
                       RealCryptoProvider, ServerCredentials, VerifyError)
from .rsa import (RsaError, RsaPrivateKey, RsaPublicKey, generate_keypair,
                  sign_pkcs1v15, verify_pkcs1v15)

__all__ = [
    "i2osp", "os2ip", "modinv",
    "Curve", "PrimeCurve", "BinaryCurve", "Point", "INFINITY", "EcError",
    "get_curve", "list_curves",
    "CryptoOp", "CryptoOpKind", "OpCategory",
    "CryptoProvider", "RealCryptoProvider", "ModeledCryptoProvider",
    "KeyShare", "ServerCredentials", "VerifyError",
    "RsaPrivateKey", "RsaPublicKey", "RsaError", "generate_keypair",
    "sign_pkcs1v15", "verify_pkcs1v15",
]
