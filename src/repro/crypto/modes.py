"""Block cipher modes of operation: CBC with PKCS#7 padding.

TLS 1.2's AES128-SHA suite uses AES-CBC with an explicit per-record IV,
then authenticates with HMAC (MAC-then-encrypt); the record layer in
:mod:`repro.tls.record` composes these.
"""

from __future__ import annotations

from .aes import AES128, BLOCK_SIZE

__all__ = ["cbc_encrypt", "cbc_decrypt", "pkcs7_pad", "pkcs7_unpad",
           "PaddingError"]


class PaddingError(ValueError):
    """Raised on malformed PKCS#7 padding."""


def pkcs7_pad(data: bytes, block: int = BLOCK_SIZE) -> bytes:
    padlen = block - (len(data) % block)
    return data + bytes([padlen]) * padlen


def pkcs7_unpad(data: bytes, block: int = BLOCK_SIZE) -> bytes:
    if not data or len(data) % block:
        raise PaddingError("data length not a multiple of the block size")
    padlen = data[-1]
    if not 1 <= padlen <= block:
        raise PaddingError("invalid pad length")
    if data[-padlen:] != bytes([padlen]) * padlen:
        raise PaddingError("inconsistent padding bytes")
    return data[:-padlen]


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt ``plaintext`` (already padded to the block size)."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("IV must be one block")
    if len(plaintext) % BLOCK_SIZE:
        raise ValueError("plaintext must be padded to the block size")
    cipher = AES128(key)
    out = bytearray()
    prev = iv
    for i in range(0, len(plaintext), BLOCK_SIZE):
        block = bytes(a ^ b for a, b in zip(plaintext[i:i + BLOCK_SIZE], prev))
        prev = cipher.encrypt_block(block)
        out += prev
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt; returns the (still padded) plaintext."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError("IV must be one block")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE:
        raise ValueError("ciphertext must be a positive multiple of the block size")
    cipher = AES128(key)
    out = bytearray()
    prev = iv
    for i in range(0, len(ciphertext), BLOCK_SIZE):
        block = ciphertext[i:i + BLOCK_SIZE]
        plain = cipher.decrypt_block(block)
        out += bytes(a ^ b for a, b in zip(plain, prev))
        prev = block
    return bytes(out)
