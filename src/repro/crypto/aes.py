"""AES-128 block cipher from scratch (FIPS 197).

Table-driven implementation: S-boxes are generated from the GF(2^8)
inverse map at import time rather than hard-coded, so the construction
itself is visible and testable. Used by the CBC record cipher in
:mod:`repro.crypto.modes`.
"""

from __future__ import annotations

__all__ = ["AES128", "BLOCK_SIZE"]

BLOCK_SIZE = 16


def _xtime(a: int) -> int:
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    acc = 0
    while b:
        if b & 1:
            acc ^= a
        a = _xtime(a)
        b >>= 1
    return acc


def _build_sbox() -> tuple:
    # Multiplicative inverse in GF(2^8) followed by the affine transform.
    inv = [0] * 256
    for x in range(1, 256):
        # brute-force inverse; runs once at import
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inv[x] = y
                break
    sbox = [0] * 256
    for x in range(256):
        b = inv[x]
        res = 0
        for i in range(8):
            bit = ((b >> i) & 1) ^ ((b >> ((i + 4) % 8)) & 1) \
                ^ ((b >> ((i + 5) % 8)) & 1) ^ ((b >> ((i + 6) % 8)) & 1) \
                ^ ((b >> ((i + 7) % 8)) & 1) ^ ((0x63 >> i) & 1)
            res |= bit << i
        sbox[x] = res
    inv_sbox = [0] * 256
    for i, v in enumerate(sbox):
        inv_sbox[v] = i
    return tuple(sbox), tuple(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()
_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


class AES128:
    """AES with a 128-bit key; encrypts/decrypts single 16-byte blocks."""

    rounds = 10

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list:
        words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
        for i in range(4, 4 * (AES128.rounds + 1)):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]                 # RotWord
                temp = [_SBOX[b] for b in temp]            # SubWord
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([words[i - 4][j] ^ temp[j] for j in range(4)])
        # Group into 16-byte round keys (column-major state layout).
        return [sum((words[4 * r + c] for c in range(4)), [])
                for r in range(AES128.rounds + 1)]

    # -- state helpers (state[c][r]: column-major like the key schedule) --

    @staticmethod
    def _add_round_key(state: list, rk: list) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: list, box) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: list) -> list:
        # state index = 4*col + row
        out = [0] * 16
        for r in range(4):
            for c in range(4):
                out[4 * c + r] = state[4 * ((c + r) % 4) + r]
        return out

    @staticmethod
    def _inv_shift_rows(state: list) -> list:
        out = [0] * 16
        for r in range(4):
            for c in range(4):
                out[4 * ((c + r) % 4) + r] = state[4 * c + r]
        return out

    @staticmethod
    def _mix_columns(state: list) -> list:
        out = [0] * 16
        for c in range(4):
            col = state[4 * c:4 * c + 4]
            out[4 * c + 0] = _gf_mul(col[0], 2) ^ _gf_mul(col[1], 3) ^ col[2] ^ col[3]
            out[4 * c + 1] = col[0] ^ _gf_mul(col[1], 2) ^ _gf_mul(col[2], 3) ^ col[3]
            out[4 * c + 2] = col[0] ^ col[1] ^ _gf_mul(col[2], 2) ^ _gf_mul(col[3], 3)
            out[4 * c + 3] = _gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ _gf_mul(col[3], 2)
        return out

    @staticmethod
    def _inv_mix_columns(state: list) -> list:
        out = [0] * 16
        for c in range(4):
            col = state[4 * c:4 * c + 4]
            out[4 * c + 0] = _gf_mul(col[0], 14) ^ _gf_mul(col[1], 11) ^ _gf_mul(col[2], 13) ^ _gf_mul(col[3], 9)
            out[4 * c + 1] = _gf_mul(col[0], 9) ^ _gf_mul(col[1], 14) ^ _gf_mul(col[2], 11) ^ _gf_mul(col[3], 13)
            out[4 * c + 2] = _gf_mul(col[0], 13) ^ _gf_mul(col[1], 9) ^ _gf_mul(col[2], 14) ^ _gf_mul(col[3], 11)
            out[4 * c + 3] = _gf_mul(col[0], 11) ^ _gf_mul(col[1], 13) ^ _gf_mul(col[2], 9) ^ _gf_mul(col[3], 14)
        return out

    # -- block operations ---------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError("block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, self.rounds):
            self._sub_bytes(state, _SBOX)
            state = self._shift_rows(state)
            state = self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state, _SBOX)
        state = self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self.rounds])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError("block must be 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[self.rounds])
        for rnd in range(self.rounds - 1, 0, -1):
            state = self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[rnd])
            state = self._inv_mix_columns(state)
        state = self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
