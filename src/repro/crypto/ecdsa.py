"""ECDSA signatures with deterministic nonces (RFC 6979).

Deterministic nonce generation keeps the whole simulation reproducible
while remaining a real, verifiable ECDSA (cross-checked against the
``cryptography``/OpenSSL oracle in the test suite).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .bigint import modinv
from .ec import Curve, EcError, Point

__all__ = ["EcdsaKeyPair", "generate_keypair", "sign", "verify"]


@dataclass(frozen=True)
class EcdsaKeyPair:
    """An EC private scalar and its public point."""

    curve: Curve
    d: int
    public: Point


def generate_keypair(curve: Curve, rng: np.random.Generator) -> EcdsaKeyPair:
    """Generate a random keypair on ``curve``."""
    nbytes = (curve.n.bit_length() + 7) // 8
    while True:
        d = int.from_bytes(rng.bytes(nbytes), "big") % curve.n
        if d != 0:
            break
    return EcdsaKeyPair(curve, d, curve.base_mult(d))


# -- RFC 6979 helpers -----------------------------------------------------


def _bits2int(data: bytes, qlen: int) -> int:
    x = int.from_bytes(data, "big")
    blen = len(data) * 8
    if blen > qlen:
        x >>= blen - qlen
    return x


def _int2octets(x: int, rlen: int) -> bytes:
    return x.to_bytes(rlen, "big")


def _bits2octets(data: bytes, q: int, qlen: int, rlen: int) -> bytes:
    z1 = _bits2int(data, qlen)
    z2 = z1 - q
    if z2 < 0:
        z2 = z1
    return _int2octets(z2, rlen)


def _rfc6979_k(d: int, h1: bytes, q: int, hash_name: str):
    """Yield candidate nonces per RFC 6979 section 3.2."""
    qlen = q.bit_length()
    rlen = (qlen + 7) // 8
    hsize = hashlib.new(hash_name).digest_size
    V = b"\x01" * hsize
    K = b"\x00" * hsize
    seed = _int2octets(d, rlen) + _bits2octets(h1, q, qlen, rlen)
    K = _hmac.new(K, V + b"\x00" + seed, hash_name).digest()
    V = _hmac.new(K, V, hash_name).digest()
    K = _hmac.new(K, V + b"\x01" + seed, hash_name).digest()
    V = _hmac.new(K, V, hash_name).digest()
    while True:
        t = b""
        while len(t) * 8 < qlen:
            V = _hmac.new(K, V, hash_name).digest()
            t += V
        k = _bits2int(t, qlen)
        if 1 <= k < q:
            yield k
        K = _hmac.new(K, V + b"\x00", hash_name).digest()
        V = _hmac.new(K, V, hash_name).digest()


# -- sign / verify --------------------------------------------------------


def sign(key: EcdsaKeyPair, message: bytes,
         hash_name: str = "sha256") -> Tuple[int, int]:
    """Sign ``message``; returns ``(r, s)``."""
    curve, q = key.curve, key.curve.n
    h1 = hashlib.new(hash_name, message).digest()
    z = _bits2int(h1, q.bit_length()) % q
    for k in _rfc6979_k(key.d, h1, q, hash_name):
        p = curve.base_mult(k)
        r = p.x % q
        if r == 0:
            continue
        s = (modinv(k, q) * (z + r * key.d)) % q
        if s == 0:
            continue
        return r, s
    raise EcError("nonce generation failed")  # pragma: no cover


def verify(curve: Curve, public: Point, message: bytes,
           signature: Tuple[int, int], hash_name: str = "sha256") -> bool:
    """Verify an ECDSA signature; returns True/False."""
    r, s = signature
    q = curve.n
    if not (1 <= r < q and 1 <= s < q):
        return False
    try:
        curve.validate_point(public)
    except EcError:
        return False
    h1 = hashlib.new(hash_name, message).digest()
    z = _bits2int(h1, q.bit_length()) % q
    w = modinv(s, q)
    u1 = (z * w) % q
    u2 = (r * w) % q
    p = curve.add(curve.base_mult(u1), curve.scalar_mult(u2, public))
    if p.is_infinity:
        return False
    return p.x % q == r
