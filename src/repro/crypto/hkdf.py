"""HKDF (RFC 5869) and the TLS 1.3 HKDF-Expand-Label (RFC 8446).

The paper's Figure 8 hinges on HKDF: TLS 1.3 replaces the PRF with
HKDF, which the QAT Engine cannot offload — so those CPU cycles stay on
the cores and cap the TLS 1.3 speedup at ~3.5x.
"""

from __future__ import annotations

import hashlib

from .hmac_impl import hmac_digest

__all__ = ["hkdf_extract", "hkdf_expand", "hkdf_expand_label"]


def hkdf_extract(salt: bytes, ikm: bytes, hash_name: str = "sha256") -> bytes:
    """HKDF-Extract: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = b"\x00" * hashlib.new(hash_name).digest_size
    return hmac_digest(salt, ikm, hash_name)


def hkdf_expand(prk: bytes, info: bytes, length: int,
                hash_name: str = "sha256") -> bytes:
    """HKDF-Expand: OKM of ``length`` bytes."""
    hsize = hashlib.new(hash_name).digest_size
    if length > 255 * hsize:
        raise ValueError("HKDF output too long")
    out = bytearray()
    t = b""
    counter = 1
    while len(out) < length:
        t = hmac_digest(prk, t + info + bytes([counter]), hash_name)
        out += t
        counter += 1
    return bytes(out[:length])


def hkdf_expand_label(secret: bytes, label: bytes, context: bytes,
                      length: int, hash_name: str = "sha256") -> bytes:
    """TLS 1.3 HKDF-Expand-Label (RFC 8446 section 7.1)."""
    full_label = b"tls13 " + label
    hkdf_label = (length.to_bytes(2, "big")
                  + bytes([len(full_label)]) + full_label
                  + bytes([len(context)]) + context)
    return hkdf_expand(secret, hkdf_label, length, hash_name)
