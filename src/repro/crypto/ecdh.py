"""Ephemeral elliptic-curve Diffie-Hellman (the "E" in ECDHE)."""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from .bigint import i2osp
from .ec import Curve, EcError, Point

__all__ = ["EcdhKeyPair", "generate_keypair", "shared_secret",
           "encode_point", "decode_point"]


@dataclass(frozen=True)
class EcdhKeyPair:
    curve: Curve
    d: int
    public: Point


def generate_keypair(curve: Curve, rng: np.random.Generator) -> EcdhKeyPair:
    nbytes = (curve.n.bit_length() + 7) // 8
    while True:
        d = int.from_bytes(rng.bytes(nbytes), "big") % curve.n
        if d != 0:
            break
    return EcdhKeyPair(curve, d, curve.base_mult(d))


def shared_secret(curve: Curve, private: int, peer_public: Point) -> bytes:
    """ECDH shared secret: the x-coordinate of ``d * Q_peer`` encoded
    as a fixed-width octet string (SEC 1 / RFC 8446 convention)."""
    curve.validate_point(peer_public)
    # Cofactor multiplication guards against small-subgroup points.
    p = curve.scalar_mult(private, peer_public)
    if curve.h != 1:
        check = p
        for _ in range(max(0, curve.h.bit_length() - 1)):
            check = curve.double(check)
        if check.is_infinity:
            raise EcError("peer point in small subgroup")
    if p.is_infinity:
        raise EcError("ECDH produced the point at infinity")
    flen = (curve.field_bits + 7) // 8
    return i2osp(p.x, flen)


def encode_point(curve: Curve, p: Point) -> bytes:
    """SEC 1 uncompressed point encoding: ``04 || X || Y``."""
    if p.is_infinity:
        raise EcError("cannot encode the point at infinity")
    flen = (curve.field_bits + 7) // 8
    return b"\x04" + i2osp(p.x, flen) + i2osp(p.y, flen)


def decode_point(curve: Curve, data: bytes) -> Point:
    """Decode and validate an uncompressed point."""
    flen = (curve.field_bits + 7) // 8
    if len(data) != 1 + 2 * flen or data[0] != 4:
        raise EcError("malformed uncompressed point")
    x = int.from_bytes(data[1:1 + flen], "big")
    y = int.from_bytes(data[1 + flen:], "big")
    p = Point(x, y)
    curve.validate_point(p)
    return p
