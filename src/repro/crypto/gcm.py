"""AES-128-GCM from scratch (NIST SP 800-38D).

TLS 1.3 protects records with AEAD; this provides the real thing:
CTR-mode encryption plus the GHASH authenticator over GF(2^128).
"""

from __future__ import annotations

from .aes import AES128

__all__ = ["AesGcm", "GcmAuthError"]


class GcmAuthError(ValueError):
    """Authentication tag mismatch."""


# GHASH works in GF(2^128) with the "reversed-bit" polynomial
# x^128 + x^7 + x^2 + x + 1; R is the reduction constant for the
# right-shift formulation of the NIST spec.
_R = 0xE1000000000000000000000000000000


def _gf128_mul(x: int, y: int) -> int:
    """Multiply in GF(2^128), NIST bit order."""
    z = 0
    v = x
    for i in range(127, -1, -1):
        if (y >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _inc32(block: bytes) -> bytes:
    """Increment the rightmost 32 bits of a counter block."""
    head, tail = block[:12], int.from_bytes(block[12:], "big")
    return head + ((tail + 1) & 0xFFFFFFFF).to_bytes(4, "big")


class AesGcm:
    """AES-128 in Galois/Counter Mode with 96-bit nonces."""

    TAG_LEN = 16

    def __init__(self, key: bytes) -> None:
        self._aes = AES128(key)
        self._h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16),
                                 "big")

    # -- GHASH ------------------------------------------------------------

    def _ghash(self, aad: bytes, ciphertext: bytes) -> bytes:
        y = 0
        for chunk in self._blocks(aad) + self._blocks(ciphertext):
            y = _gf128_mul(y ^ int.from_bytes(chunk, "big"), self._h)
        lengths = ((len(aad) * 8).to_bytes(8, "big")
                   + (len(ciphertext) * 8).to_bytes(8, "big"))
        y = _gf128_mul(y ^ int.from_bytes(lengths, "big"), self._h)
        return y.to_bytes(16, "big")

    @staticmethod
    def _blocks(data: bytes) -> list:
        out = []
        for i in range(0, len(data), 16):
            chunk = data[i:i + 16]
            if len(chunk) < 16:
                chunk = chunk + b"\x00" * (16 - len(chunk))
            out.append(chunk)
        return out

    # -- CTR ---------------------------------------------------------------

    def _ctr(self, counter0: bytes, data: bytes) -> bytes:
        out = bytearray()
        counter = counter0
        for i in range(0, len(data), 16):
            counter = _inc32(counter)
            keystream = self._aes.encrypt_block(counter)
            chunk = data[i:i + 16]
            out += bytes(a ^ b for a, b in zip(chunk, keystream))
        return bytes(out)

    # -- AEAD interface -----------------------------------------------------

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt + authenticate; returns ciphertext || tag."""
        if len(nonce) != 12:
            raise ValueError("GCM nonce must be 96 bits")
        j0 = nonce + b"\x00\x00\x00\x01"
        ciphertext = self._ctr(j0, plaintext)
        s = self._ghash(aad, ciphertext)
        ek_j0 = self._aes.encrypt_block(j0)
        tag = bytes(a ^ b for a, b in zip(s, ek_j0))
        return ciphertext + tag

    def open(self, nonce: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify + decrypt; raises :class:`GcmAuthError` on any change."""
        if len(nonce) != 12:
            raise ValueError("GCM nonce must be 96 bits")
        if len(sealed) < self.TAG_LEN:
            raise GcmAuthError("sealed input shorter than the tag")
        ciphertext, tag = sealed[:-self.TAG_LEN], sealed[-self.TAG_LEN:]
        j0 = nonce + b"\x00\x00\x00\x01"
        s = self._ghash(aad, ciphertext)
        ek_j0 = self._aes.encrypt_block(j0)
        expect = bytes(a ^ b for a, b in zip(s, ek_j0))
        if tag != expect:
            raise GcmAuthError("GCM tag mismatch")
        return self._ctr(j0, ciphertext)
