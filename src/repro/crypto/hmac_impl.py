"""HMAC (RFC 2104) from scratch over the hashlib digest primitives.

The hash compression functions themselves come from ``hashlib`` — they
are CPU primitives in the real system too (SHA-NI); everything above
them (HMAC, PRF, HKDF, record MACs) is built here.
"""

from __future__ import annotations

import hashlib

__all__ = ["hmac_digest", "HmacKey"]


def _block_size(hash_name: str) -> int:
    return hashlib.new(hash_name).block_size


def hmac_digest(key: bytes, message: bytes, hash_name: str = "sha256") -> bytes:
    """One-shot HMAC."""
    return HmacKey(key, hash_name).digest(message)


class HmacKey:
    """Precomputed-pad HMAC context, reusable across messages."""

    def __init__(self, key: bytes, hash_name: str = "sha256") -> None:
        self.hash_name = hash_name
        block = _block_size(hash_name)
        if len(key) > block:
            key = hashlib.new(hash_name, key).digest()
        key = key.ljust(block, b"\x00")
        self._ipad = bytes(b ^ 0x36 for b in key)
        self._opad = bytes(b ^ 0x5C for b in key)
        self.digest_size = hashlib.new(hash_name).digest_size

    def digest(self, message: bytes) -> bytes:
        inner = hashlib.new(self.hash_name, self._ipad + message).digest()
        return hashlib.new(self.hash_name, self._opad + inner).digest()
