"""Binary field GF(2^m) arithmetic in polynomial basis.

Field elements are Python ints whose bits are polynomial coefficients.
This backs the NIST B-/K- binary curves of the paper's Figure 7c.
"""

from __future__ import annotations

__all__ = ["BinaryField"]


class BinaryField:
    """GF(2^m) with a fixed irreducible reduction polynomial.

    Parameters
    ----------
    modulus:
        The reduction polynomial as an int, including the ``x^m`` term —
        e.g. ``x^283 + x^12 + x^7 + x^5 + 1`` is
        ``(1 << 283) | 0b1000010100001`` … exactly the encoding used by
        the OpenSSL-extracted constants.
    """

    def __init__(self, modulus: int) -> None:
        if modulus < 2:
            raise ValueError("modulus must have degree >= 1")
        self.modulus = modulus
        self.m = modulus.bit_length() - 1

    # -- basic ops -----------------------------------------------------

    def reduce(self, x: int) -> int:
        """Reduce a polynomial of any degree modulo the field polynomial."""
        mod = self.modulus
        m = self.m
        deg = x.bit_length() - 1
        while deg >= m:
            x ^= mod << (deg - m)
            deg = x.bit_length() - 1
        return x

    def add(self, a: int, b: int) -> int:
        """Addition = XOR in characteristic 2."""
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Carry-less multiplication followed by reduction."""
        if a == 0 or b == 0:
            return 0
        # Iterate over the sparser operand for speed.
        if a.bit_count() > b.bit_count():
            a, b = b, a
        acc = 0
        while a:
            low = a & -a  # lowest set bit
            acc ^= b << (low.bit_length() - 1)
            a ^= low
        return self.reduce(acc)

    def sqr(self, a: int) -> int:
        """Squaring: spread bits (the linear Frobenius map)."""
        # Insert a zero bit between consecutive bits of a.
        result = 0
        i = 0
        while a:
            if a & 1:
                result |= 1 << (2 * i)
            a >>= 1
            i += 1
        return self.reduce(result)

    def inv(self, a: int) -> int:
        """Inverse via the binary extended Euclidean algorithm."""
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF(2^m)")
        a = self.reduce(a)
        u, v = a, self.modulus
        g1, g2 = 1, 0
        while u != 1:
            j = u.bit_length() - v.bit_length()
            if j < 0:
                u, v = v, u
                g1, g2 = g2, g1
                j = -j
            u ^= v << j
            g1 ^= g2 << j
        return self.reduce(g1)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    # -- validation ----------------------------------------------------

    def contains(self, a: int) -> bool:
        return 0 <= a < (1 << self.m)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GF(2^{self.m})"
