"""The TLS 1.2 pseudo-random function (RFC 5246 section 5).

``PRF(secret, label, seed) = P_hash(secret, label + seed)`` where
``P_hash`` chains HMAC outputs. TLS 1.2 key derivation performs several
of these per handshake — Table 1's PRF column.
"""

from __future__ import annotations

from .hmac_impl import HmacKey

__all__ = ["prf", "p_hash"]


def p_hash(secret: bytes, seed: bytes, length: int,
           hash_name: str = "sha256") -> bytes:
    """The HMAC expansion chain P_hash (RFC 5246)."""
    hk = HmacKey(secret, hash_name)
    out = bytearray()
    a = seed  # A(0)
    while len(out) < length:
        a = hk.digest(a)              # A(i) = HMAC(secret, A(i-1))
        out += hk.digest(a + seed)
    return bytes(out[:length])


def prf(secret: bytes, label: bytes, seed: bytes, length: int,
        hash_name: str = "sha256") -> bytes:
    """TLS 1.2 PRF; ``label`` is e.g. ``b"master secret"``."""
    return p_hash(secret, label + seed, length, hash_name)
