"""Crypto providers: real math vs. modeled placeholders.

The TLS stack is written against :class:`CryptoProvider`. Two
implementations exist:

:class:`RealCryptoProvider`
    Executes the from-scratch primitives in this package. Signatures
    verify, records decrypt — used by the test suite and the examples.

:class:`ModeledCryptoProvider`
    Produces deterministic, structurally-correct placeholder bytes so
    that large simulated workloads (100K+ handshakes) do not pay
    pure-Python bignum costs. Both sides of a connection derive the
    *same* secrets from the *same* wire bytes, so the protocol state
    machines run unchanged.

Crucially, **simulated durations do not come from providers** — they
come from the cost model — so switching provider never changes the
performance results, only the wall-clock cost of running them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from . import ecdh, ecdsa, rsa
from .bigint import i2osp, os2ip
from .ec import get_curve
from .hkdf import hkdf_expand_label, hkdf_extract
from .prf import prf as _prf

__all__ = ["KeyShare", "ServerCredentials", "CryptoProvider",
           "RealCryptoProvider", "ModeledCryptoProvider",
           "AccountingCryptoProvider", "VerifyError"]


class VerifyError(ValueError):
    """Raised when a signature or MAC check fails."""


@dataclass(frozen=True)
class KeyShare:
    """An (EC)DHE key share: opaque private handle + wire encoding."""

    curve: str
    private: object
    public_bytes: bytes


@dataclass(frozen=True)
class ServerCredentials:
    """Server authentication material.

    ``kind`` is ``"rsa"`` or ``"ecdsa"``; ``public_bytes`` is what gets
    shipped in the Certificate message and is all a client needs to
    verify signatures from this server.
    """

    kind: str
    key_id: str
    private: object
    public_bytes: bytes
    rsa_bits: Optional[int] = None
    curve: Optional[str] = None

    @property
    def sig_curve(self) -> Optional[str]:
        return self.curve if self.kind == "ecdsa" else None


def _field_len(curve_name: str) -> int:
    return (get_curve(curve_name).field_bits + 7) // 8


def _order_len(curve_name: str) -> int:
    return (get_curve(curve_name).n.bit_length() + 7) // 8


class CryptoProvider:
    """Abstract provider interface (see module docstring)."""

    name = "abstract"

    # -- server credentials --------------------------------------------

    def make_rsa_credentials(self, bits: int, rng: np.random.Generator,
                             key_id: str = "server-rsa") -> ServerCredentials:
        raise NotImplementedError

    def make_ecdsa_credentials(self, curve: str, rng: np.random.Generator,
                               key_id: str = "server-ec") -> ServerCredentials:
        raise NotImplementedError

    # -- asymmetric ------------------------------------------------------

    def rsa_encrypt(self, server_public: bytes, message: bytes,
                    rng: np.random.Generator) -> bytes:
        raise NotImplementedError

    def rsa_decrypt(self, cred: ServerCredentials, ciphertext: bytes,
                    expected_len: int) -> bytes:
        raise NotImplementedError

    def sign(self, cred: ServerCredentials, message: bytes) -> bytes:
        raise NotImplementedError

    def verify(self, kind: str, server_public: bytes, message: bytes,
               signature: bytes, curve: Optional[str] = None) -> bool:
        raise NotImplementedError

    def ecdh_keygen(self, curve: str, rng: np.random.Generator) -> KeyShare:
        raise NotImplementedError

    def ecdh_shared(self, share: KeyShare, peer_public: bytes) -> bytes:
        raise NotImplementedError

    # -- key derivation ---------------------------------------------------
    # PRF/HKDF math is cheap even in pure Python, so both providers use
    # the real implementations (their simulated cost is charged by the
    # engine layer regardless).

    def prf(self, secret: bytes, label: bytes, seed: bytes,
            length: int) -> bytes:
        return _prf(secret, label, seed, length)

    def hkdf_extract(self, salt: bytes, ikm: bytes) -> bytes:
        return hkdf_extract(salt, ikm)

    def hkdf_expand_label(self, secret: bytes, label: bytes, context: bytes,
                          length: int) -> bytes:
        return hkdf_expand_label(secret, label, context, length)

    # -- record protection --------------------------------------------------

    def encrypt_record_cbc_hmac(self, enc_key: bytes, mac_key: bytes,
                                seq: int, content_type: int, version: int,
                                payload: bytes, iv: bytes) -> bytes:
        raise NotImplementedError

    def decrypt_record_cbc_hmac(self, enc_key: bytes, mac_key: bytes,
                                seq: int, content_type: int, version: int,
                                fragment: bytes) -> bytes:
        raise NotImplementedError

    # TLS 1.3 AEAD records (AES-128-GCM, RFC 8446 section 5.2/5.3).

    def encrypt_record_aead(self, enc_key: bytes, iv: bytes, seq: int,
                            content_type: int, payload: bytes) -> bytes:
        raise NotImplementedError

    def decrypt_record_aead(self, enc_key: bytes, iv: bytes, seq: int,
                            content_type: int, fragment: bytes) -> bytes:
        raise NotImplementedError

    @staticmethod
    def aead_nonce(iv: bytes, seq: int) -> bytes:
        """RFC 8446: per-record nonce = static IV XOR padded sequence."""
        seq_bytes = seq.to_bytes(len(iv), "big")
        return bytes(a ^ b for a, b in zip(iv, seq_bytes))


# ---------------------------------------------------------------------------


class RealCryptoProvider(CryptoProvider):
    """Executes the actual from-scratch primitives."""

    name = "real"

    # -- credentials --------------------------------------------------------

    def make_rsa_credentials(self, bits: int, rng: np.random.Generator,
                             key_id: str = "server-rsa") -> ServerCredentials:
        key = rsa.generate_keypair(bits, rng)
        size = key.size
        pub = i2osp(key.n, size) + i2osp(key.e, 4)
        return ServerCredentials("rsa", key_id, key, pub, rsa_bits=bits)

    def make_ecdsa_credentials(self, curve: str, rng: np.random.Generator,
                               key_id: str = "server-ec") -> ServerCredentials:
        c = get_curve(curve)
        key = ecdsa.generate_keypair(c, rng)
        pub = ecdh.encode_point(c, key.public)
        return ServerCredentials("ecdsa", key_id, key, pub, curve=curve)

    # -- asymmetric ------------------------------------------------------

    @staticmethod
    def _parse_rsa_public(blob: bytes) -> rsa.RsaPublicKey:
        n = os2ip(blob[:-4])
        e = os2ip(blob[-4:])
        return rsa.RsaPublicKey(n, e)

    def rsa_encrypt(self, server_public: bytes, message: bytes,
                    rng: np.random.Generator) -> bytes:
        return rsa.encrypt_pkcs1v15(self._parse_rsa_public(server_public),
                                    message, rng)

    def rsa_decrypt(self, cred: ServerCredentials, ciphertext: bytes,
                    expected_len: int) -> bytes:
        return rsa.decrypt_pkcs1v15(cred.private, ciphertext, expected_len)

    def sign(self, cred: ServerCredentials, message: bytes) -> bytes:
        if cred.kind == "rsa":
            return rsa.sign_pkcs1v15(cred.private, message)
        c = get_curve(cred.curve)
        r, s = ecdsa.sign(cred.private, message)
        olen = _order_len(cred.curve)
        return i2osp(r, olen) + i2osp(s, olen)

    def verify(self, kind: str, server_public: bytes, message: bytes,
               signature: bytes, curve: Optional[str] = None) -> bool:
        if kind == "rsa":
            return rsa.verify_pkcs1v15(self._parse_rsa_public(server_public),
                                       message, signature)
        c = get_curve(curve)
        olen = _order_len(curve)
        if len(signature) != 2 * olen:
            return False
        r, s = os2ip(signature[:olen]), os2ip(signature[olen:])
        try:
            pub = ecdh.decode_point(c, server_public)
        except Exception:
            return False
        return ecdsa.verify(c, pub, message, (r, s))

    def ecdh_keygen(self, curve: str, rng: np.random.Generator) -> KeyShare:
        c = get_curve(curve)
        pair = ecdh.generate_keypair(c, rng)
        return KeyShare(curve, pair.d, ecdh.encode_point(c, pair.public))

    def ecdh_shared(self, share: KeyShare, peer_public: bytes) -> bytes:
        c = get_curve(share.curve)
        peer = ecdh.decode_point(c, peer_public)
        return ecdh.shared_secret(c, share.private, peer)

    # -- record protection (MAC-then-encrypt, RFC 5246 6.2.3.2) -----------

    @staticmethod
    def _record_mac(mac_key: bytes, seq: int, content_type: int,
                    version: int, payload: bytes) -> bytes:
        from .hmac_impl import hmac_digest
        header = (seq.to_bytes(8, "big") + bytes([content_type])
                  + version.to_bytes(2, "big")
                  + len(payload).to_bytes(2, "big"))
        return hmac_digest(mac_key, header + payload, "sha1")

    def encrypt_record_cbc_hmac(self, enc_key: bytes, mac_key: bytes,
                                seq: int, content_type: int, version: int,
                                payload: bytes, iv: bytes) -> bytes:
        from .modes import cbc_encrypt, pkcs7_pad
        mac = self._record_mac(mac_key, seq, content_type, version, payload)
        plaintext = pkcs7_pad(payload + mac)
        # Explicit IV convention: IV is prepended to the ciphertext.
        return iv + cbc_encrypt(enc_key, iv, plaintext)

    def decrypt_record_cbc_hmac(self, enc_key: bytes, mac_key: bytes,
                                seq: int, content_type: int, version: int,
                                fragment: bytes) -> bytes:
        from .modes import PaddingError, cbc_decrypt, pkcs7_unpad
        if len(fragment) < 32:
            raise VerifyError("record too short")
        iv, ct = fragment[:16], fragment[16:]
        try:
            padded = cbc_decrypt(enc_key, iv, ct)
            plaintext = pkcs7_unpad(padded)
        except (PaddingError, ValueError) as e:
            raise VerifyError(f"bad record: {e}") from None
        if len(plaintext) < 20:
            raise VerifyError("record shorter than its MAC")
        payload, mac = plaintext[:-20], plaintext[-20:]
        expect = self._record_mac(mac_key, seq, content_type, version, payload)
        if mac != expect:
            raise VerifyError("record MAC mismatch")
        return payload


    # -- TLS 1.3 AEAD records ----------------------------------------------

    def encrypt_record_aead(self, enc_key: bytes, iv: bytes, seq: int,
                            content_type: int, payload: bytes) -> bytes:
        from .gcm import AesGcm
        nonce = self.aead_nonce(iv[:12], seq)
        inner = payload + bytes([content_type])
        aad = b"\x17\x03\x03" + (len(inner) + 16).to_bytes(2, "big")
        return AesGcm(enc_key).seal(nonce, inner, aad)

    def decrypt_record_aead(self, enc_key: bytes, iv: bytes, seq: int,
                            content_type: int, fragment: bytes) -> bytes:
        from .gcm import AesGcm, GcmAuthError
        nonce = self.aead_nonce(iv[:12], seq)
        aad = b"\x17\x03\x03" + len(fragment).to_bytes(2, "big")
        try:
            inner = AesGcm(enc_key).open(nonce, fragment, aad)
        except GcmAuthError as e:
            raise VerifyError(str(e)) from None
        if not inner or inner[-1] != content_type:
            raise VerifyError("inner content type mismatch")
        return inner[:-1]


# ---------------------------------------------------------------------------


def _h(*parts: bytes) -> bytes:
    ctx = hashlib.sha256()
    for p in parts:
        ctx.update(len(p).to_bytes(4, "big"))
        ctx.update(p)
    return ctx.digest()


def _stretch(seed: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
        counter += 1
    return bytes(out[:length])


class ModeledCryptoProvider(CryptoProvider):
    """Deterministic placeholder crypto with correct wire shapes.

    Secrets are derived with SHA-256 from the bytes both sides can see,
    so key agreement "works"; signatures are keyed hashes that verify
    only against the matching public blob. This keeps protocol logic,
    message sizes and failure paths identical to the real provider at a
    tiny fraction of the compute.
    """

    name = "modeled"

    # -- credentials --------------------------------------------------------

    def make_rsa_credentials(self, bits: int, rng: np.random.Generator,
                             key_id: str = "server-rsa") -> ServerCredentials:
        secret = rng.bytes(32)
        pub = _h(b"rsa-pub", key_id.encode(), secret)
        pub = _stretch(pub, bits // 8 + 4)
        return ServerCredentials("rsa", key_id, secret, pub, rsa_bits=bits)

    def make_ecdsa_credentials(self, curve: str, rng: np.random.Generator,
                               key_id: str = "server-ec") -> ServerCredentials:
        secret = rng.bytes(32)
        pub = _stretch(_h(b"ec-pub", key_id.encode(), secret),
                       1 + 2 * _field_len(curve))
        return ServerCredentials("ecdsa", key_id, secret, pub, curve=curve)

    # -- asymmetric ------------------------------------------------------

    def rsa_encrypt(self, server_public: bytes, message: bytes,
                    rng: np.random.Generator) -> bytes:
        # Ciphertext = recoverable container bound to the public key.
        # Width matches the modulus size (public blob minus the 4-byte e).
        k = len(server_public) - 4
        body = _h(b"rsa-ct", server_public) + len(message).to_bytes(2, "big") \
            + message
        return body + _stretch(_h(b"pad", body), k - len(body))

    def rsa_decrypt(self, cred: ServerCredentials, ciphertext: bytes,
                    expected_len: int) -> bytes:
        tag = _h(b"rsa-ct", cred.public_bytes)
        if ciphertext[:32] != tag:
            raise rsa.RsaError("decryption error")
        mlen = int.from_bytes(ciphertext[32:34], "big")
        if mlen != expected_len:
            raise rsa.RsaError("decryption error")
        return ciphertext[34:34 + mlen]

    def sign(self, cred: ServerCredentials, message: bytes) -> bytes:
        if cred.kind == "rsa":
            width = (cred.rsa_bits or 2048) // 8
        else:
            width = 2 * _order_len(cred.curve)
        return _stretch(_h(b"sig", cred.public_bytes, message), width)

    def verify(self, kind: str, server_public: bytes, message: bytes,
               signature: bytes, curve: Optional[str] = None) -> bool:
        return signature == _stretch(_h(b"sig", server_public, message),
                                     len(signature))

    def ecdh_keygen(self, curve: str, rng: np.random.Generator) -> KeyShare:
        secret = rng.bytes(32)
        # Commutative fake DH: public = g^x modeled as a scalar in a
        # Schnorr-group-free way — use modexp over a fixed 256-bit prime
        # so shared secrets actually agree without real EC math.
        x = int.from_bytes(_h(b"dh-x", secret), "big")
        pub_int = pow(_DH_G, x, _DH_P)
        flen = _field_len(curve)
        pub = b"\x04" + pub_int.to_bytes(32, "big")
        pub += _stretch(_h(b"dh-fill", pub), 2 * flen - 32)
        return KeyShare(curve, x, pub)

    def ecdh_shared(self, share: KeyShare, peer_public: bytes) -> bytes:
        peer_int = int.from_bytes(peer_public[1:33], "big")
        flen = _field_len(share.curve)
        shared = pow(peer_int, share.private, _DH_P)
        return _stretch(_h(b"dh-ss", shared.to_bytes(32, "big")), flen)

    # -- record protection ---------------------------------------------------

    def encrypt_record_cbc_hmac(self, enc_key: bytes, mac_key: bytes,
                                seq: int, content_type: int, version: int,
                                payload: bytes, iv: bytes) -> bytes:
        # Same length arithmetic as real CBC/HMAC-SHA1: IV + pad(payload+20).
        padded_len = (len(payload) + 20) + 16 - ((len(payload) + 20) % 16)
        tag = _h(b"rec", enc_key, mac_key, seq.to_bytes(8, "big"),
                 bytes([content_type]), payload)[:16]
        body = len(payload).to_bytes(3, "big") + payload + tag
        assert len(body) <= padded_len
        return iv + body + _stretch(_h(b"rp", tag), padded_len - len(body))

    def decrypt_record_cbc_hmac(self, enc_key: bytes, mac_key: bytes,
                                seq: int, content_type: int, version: int,
                                fragment: bytes) -> bytes:
        if len(fragment) < 32:
            raise VerifyError("record too short")
        body = fragment[16:]
        plen = int.from_bytes(body[:3], "big")
        payload = body[3:3 + plen]
        tag = _h(b"rec", enc_key, mac_key, seq.to_bytes(8, "big"),
                 bytes([content_type]), payload)[:16]
        if body[3 + plen:3 + plen + 16] != tag:
            raise VerifyError("record MAC mismatch")
        # Any flipped bit outside the payload/tag lands in the filler,
        # which is deterministic from the tag — verify it too so the
        # modeled provider detects tampering anywhere in the record.
        fill = _stretch(_h(b"rp", tag), len(body) - (3 + plen + 16))
        if body[3 + plen + 16:] != fill:
            raise VerifyError("record MAC mismatch")
        return payload


    # -- TLS 1.3 AEAD records (same wire arithmetic as GCM) -----------------

    def encrypt_record_aead(self, enc_key: bytes, iv: bytes, seq: int,
                            content_type: int, payload: bytes) -> bytes:
        tag = _h(b"aead", enc_key, iv, seq.to_bytes(8, "big"),
                 bytes([content_type]), payload)[:16]
        # Same wire arithmetic as GCM: payload || content_type || tag.
        # The payload length is implied by the fragment length.
        return payload + bytes([content_type]) + tag

    def decrypt_record_aead(self, enc_key: bytes, iv: bytes, seq: int,
                            content_type: int, fragment: bytes) -> bytes:
        if len(fragment) < 17:
            raise VerifyError("record too short")
        payload = fragment[:-17]
        if fragment[-17] != content_type:
            raise VerifyError("inner content type mismatch")
        tag = _h(b"aead", enc_key, iv, seq.to_bytes(8, "big"),
                 bytes([content_type]), payload)[:16]
        if fragment[-16:] != tag:
            raise VerifyError("record tag mismatch")
        return payload


# A fixed 256-bit safe-ish prime for the modeled commutative exchange
# (secp256k1's field prime; only used as a modexp group, not a curve).
_DH_P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
_DH_G = 5


class _LenOnlyBlob:
    """A length-only stand-in for large ciphertext fragments.

    Supports ``len()`` (all the transport accounting needs) without
    materializing megabytes of placeholder bytes — used by the
    throughput benchmarks, where per-record content is irrelevant.
    """

    __slots__ = ("_n",)

    def __init__(self, n: int) -> None:
        self._n = n

    def __len__(self) -> int:
        return self._n


class AccountingCryptoProvider(ModeledCryptoProvider):
    """ModeledCryptoProvider variant for large-transfer benchmarks:
    record fragments above ``blob_threshold`` are length-only blobs.

    Wire-size arithmetic is identical to the other providers; only the
    ability to decrypt the (never-decrypted) bulk records is dropped.
    """

    name = "accounting"

    def __init__(self, blob_threshold: int = 2048) -> None:
        self.blob_threshold = blob_threshold

    def encrypt_record_cbc_hmac(self, enc_key, mac_key, seq, content_type,
                                version, payload, iv):
        if len(payload) <= self.blob_threshold:
            return super().encrypt_record_cbc_hmac(
                enc_key, mac_key, seq, content_type, version, payload, iv)
        padded_len = (len(payload) + 20) + 16 - ((len(payload) + 20) % 16)
        return _LenOnlyBlob(16 + padded_len)

    def decrypt_record_cbc_hmac(self, enc_key, mac_key, seq, content_type,
                                version, fragment):
        if isinstance(fragment, _LenOnlyBlob):
            raise VerifyError("accounting blobs cannot be decrypted")
        return super().decrypt_record_cbc_hmac(
            enc_key, mac_key, seq, content_type, version, fragment)
