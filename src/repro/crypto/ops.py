"""Crypto operation descriptors.

Every operation the TLS stack performs is described by a
:class:`CryptoOp`; the engine layer (software or QAT) consumes these to
(a) run/offload the actual computation and (b) charge the right
simulated duration from the cost model. The three inflight counters of
the heuristic polling scheme (Rasym, Rcipher, Rprf — paper section 4.3)
are keyed by :attr:`CryptoOpKind.category`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional

__all__ = ["CryptoOpKind", "OpCategory", "CryptoOp", "SCHED_CLASSES"]


class OpCategory(str, Enum):
    """Inflight-counter buckets used by the heuristic polling scheme."""

    ASYM = "asym"       # Rasym: RSA/ECC asymmetric ops
    CIPHER = "cipher"   # Rcipher: chained record ciphers
    PRF = "prf"         # Rprf: key-derivation ops

    @property
    def sched_class(self) -> str:
        """The scheduling class (admission lane) this category maps to
        in the class-aware offload scheduler."""
        return SCHED_CLASSES[self]


#: Scheduling-class names per category: the admission lanes of the
#: class-aware offload scheduler (``repro.offload.scheduler``).
#: Handshake-critical asymmetric ops, bulk record ciphers and key
#: derivation contend differently for the accelerator, so each gets
#: its own lane.
SCHED_CLASSES = {
    OpCategory.ASYM: "handshake-asym",
    OpCategory.CIPHER: "record-cipher",
    OpCategory.PRF: "prf",
}


class CryptoOpKind(Enum):
    """The operations QTLS distinguishes, with their offloadability.

    TLS 1.3's HKDF is the one kind the QAT Engine cannot offload
    (paper section 5.2, Figure 8).
    """

    RSA_PRIV = ("rsa_priv", OpCategory.ASYM, True)
    RSA_PUB = ("rsa_pub", OpCategory.ASYM, True)
    ECDSA_SIGN = ("ecdsa_sign", OpCategory.ASYM, True)
    ECDSA_VERIFY = ("ecdsa_verify", OpCategory.ASYM, True)
    ECDH_KEYGEN = ("ecdh_keygen", OpCategory.ASYM, True)
    ECDH_COMPUTE = ("ecdh_compute", OpCategory.ASYM, True)
    PRF = ("prf", OpCategory.PRF, True)
    HKDF = ("hkdf", OpCategory.PRF, False)
    RECORD_CIPHER = ("record_cipher", OpCategory.CIPHER, True)

    def __init__(self, label: str, category: OpCategory,
                 qat_offloadable: bool) -> None:
        self.label = label
        self.category = category
        self.qat_offloadable = qat_offloadable


@dataclass
class CryptoOp:
    """A single crypto operation instance.

    Parameters relevant to costing:

    - ``rsa_bits`` for RSA ops,
    - ``curve`` for EC ops,
    - ``nbytes`` (payload size) for record ciphers and KDF output.
    """

    kind: CryptoOpKind
    rsa_bits: Optional[int] = None
    curve: Optional[str] = None
    nbytes: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def category(self) -> OpCategory:
        return self.kind.category

    @property
    def qat_offloadable(self) -> bool:
        return self.kind.qat_offloadable

    def describe(self) -> str:
        parts = [self.kind.label]
        if self.rsa_bits:
            parts.append(f"{self.rsa_bits}b")
        if self.curve:
            parts.append(self.curve)
        if self.nbytes:
            parts.append(f"{self.nbytes}B")
        return "-".join(parts)
