"""Elliptic-curve group arithmetic over prime and binary fields.

Implements the six NIST curves the paper evaluates (Figure 7c):
P-256, P-384 (prime field, short Weierstrass ``y^2 = x^3 + ax + b``)
and B-283, B-409, K-283, K-409 (binary field, non-supersingular
``y^2 + xy = x^3 + ax^2 + b``).

Curve constants are extracted from OpenSSL (see
:mod:`repro.crypto.curve_constants`); parameter integrity is checked by
tests (generator on curve, ``n*G == O``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .bigint import modinv
from .curve_constants import CURVE_CONSTANTS
from .gf2m import BinaryField

__all__ = ["Point", "INFINITY", "Curve", "PrimeCurve", "BinaryCurve",
           "get_curve", "list_curves", "EcError"]


class EcError(ValueError):
    """Raised on invalid points or parameters."""


@dataclass(frozen=True)
class Point:
    """An affine curve point; ``INFINITY`` is the identity."""

    x: Optional[int]
    y: Optional[int]

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_infinity:
            return "Point(INF)"
        return f"Point(x=0x{self.x:x}, y=0x{self.y:x})"


INFINITY = Point(None, None)


class Curve:
    """Abstract curve group. Subclasses implement the field-specific
    addition law; scalar multiplication and validation live here."""

    name: str
    n: int   # order of the generator (prime)
    h: int   # cofactor

    def __init__(self, name: str, gx: int, gy: int, n: int, h: int) -> None:
        self.name = name
        self.n = n
        self.h = h
        self.generator = Point(gx, gy)

    # -- subclass API ----------------------------------------------------

    def add(self, p: Point, q: Point) -> Point:
        raise NotImplementedError

    def double(self, p: Point) -> Point:
        raise NotImplementedError

    def negate(self, p: Point) -> Point:
        raise NotImplementedError

    def is_on_curve(self, p: Point) -> bool:
        raise NotImplementedError

    @property
    def field_bits(self) -> int:
        raise NotImplementedError

    # -- generic group ops -------------------------------------------------

    def scalar_mult(self, k: int, p: Point) -> Point:
        """Left-to-right double-and-add (timing is irrelevant here: the
        performance model charges a fixed cost per scalar mult)."""
        if p.is_infinity or k % self.n == 0:
            return INFINITY
        k %= self.n
        result = INFINITY
        addend = p
        while k:
            if k & 1:
                result = self.add(result, addend)
            addend = self.double(addend)
            k >>= 1
        return result

    def base_mult(self, k: int) -> Point:
        return self.scalar_mult(k, self.generator)

    def validate_point(self, p: Point) -> None:
        if p.is_infinity:
            raise EcError("point at infinity is not a valid public point")
        if not self.is_on_curve(p):
            raise EcError(f"point not on curve {self.name}")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Curve {self.name}>"


class PrimeCurve(Curve):
    """Short Weierstrass curve over GF(p): ``y^2 = x^3 + ax + b``."""

    def __init__(self, name: str, p: int, a: int, b: int, gx: int, gy: int,
                 n: int, h: int, montgomery_friendly: bool = False) -> None:
        super().__init__(name, gx, gy, n, h)
        self.p = p
        self.a = a % p
        self.b = b % p
        # Whether the prime admits the fast Montgomery-domain software
        # implementation (Gueron-Krasnov) — drives Fig. 7c's SW anomaly.
        self.montgomery_friendly = montgomery_friendly

    @property
    def field_bits(self) -> int:
        return self.p.bit_length()

    def is_on_curve(self, pt: Point) -> bool:
        if pt.is_infinity:
            return True
        x, y = pt.x, pt.y
        if not (0 <= x < self.p and 0 <= y < self.p):
            return False
        return (y * y - (x * x * x + self.a * x + self.b)) % self.p == 0

    def negate(self, pt: Point) -> Point:
        if pt.is_infinity:
            return INFINITY
        return Point(pt.x, (-pt.y) % self.p)

    def add(self, p1: Point, p2: Point) -> Point:
        if p1.is_infinity:
            return p2
        if p2.is_infinity:
            return p1
        if p1.x == p2.x:
            if (p1.y + p2.y) % self.p == 0:
                return INFINITY
            return self.double(p1)
        lam = ((p2.y - p1.y) * modinv(p2.x - p1.x, self.p)) % self.p
        x3 = (lam * lam - p1.x - p2.x) % self.p
        y3 = (lam * (p1.x - x3) - p1.y) % self.p
        return Point(x3, y3)

    def double(self, pt: Point) -> Point:
        if pt.is_infinity or pt.y == 0:
            return INFINITY
        lam = ((3 * pt.x * pt.x + self.a) * modinv(2 * pt.y, self.p)) % self.p
        x3 = (lam * lam - 2 * pt.x) % self.p
        y3 = (lam * (pt.x - x3) - pt.y) % self.p
        return Point(x3, y3)


class BinaryCurve(Curve):
    """Non-supersingular curve over GF(2^m): ``y^2 + xy = x^3 + ax^2 + b``."""

    def __init__(self, name: str, poly: int, a: int, b: int, gx: int, gy: int,
                 n: int, h: int) -> None:
        super().__init__(name, gx, gy, n, h)
        self.field = BinaryField(poly)
        self.a = a
        self.b = b

    @property
    def field_bits(self) -> int:
        return self.field.m

    def is_on_curve(self, pt: Point) -> bool:
        if pt.is_infinity:
            return True
        f = self.field
        x, y = pt.x, pt.y
        if not (f.contains(x) and f.contains(y)):
            return False
        lhs = f.add(f.sqr(y), f.mul(x, y))
        rhs = f.add(f.add(f.mul(f.sqr(x), x), f.mul(self.a, f.sqr(x))), self.b)
        return lhs == rhs

    def negate(self, pt: Point) -> Point:
        if pt.is_infinity:
            return INFINITY
        # -(x, y) = (x, x + y) in characteristic 2.
        return Point(pt.x, self.field.add(pt.x, pt.y))

    def add(self, p1: Point, p2: Point) -> Point:
        if p1.is_infinity:
            return p2
        if p2.is_infinity:
            return p1
        f = self.field
        if p1.x == p2.x:
            if p1.y == p2.y:
                return self.double(p1)  # double() maps x == 0 to O
            return INFINITY  # same x, different y => p2 == -p1
        lam = f.div(f.add(p1.y, p2.y), f.add(p1.x, p2.x))
        x3 = f.add(f.add(f.add(f.add(f.sqr(lam), lam), p1.x), p2.x), self.a)
        y3 = f.add(f.add(f.mul(lam, f.add(p1.x, x3)), x3), p1.y)
        return Point(x3, y3)

    def double(self, pt: Point) -> Point:
        if pt.is_infinity or pt.x == 0:
            return INFINITY
        f = self.field
        lam = f.add(pt.x, f.div(pt.y, pt.x))
        x3 = f.add(f.add(f.sqr(lam), lam), self.a)
        y3 = f.add(f.mul(f.add(lam, 1), x3), f.sqr(pt.x))
        return Point(x3, y3)


# -- registry -----------------------------------------------------------

_REGISTRY: Dict[str, Curve] = {}


def _build_registry() -> None:
    for name, c in CURVE_CONSTANTS.items():
        if c["kind"] == "prime":
            _REGISTRY[name] = PrimeCurve(
                name, c["field"], c["a"], c["b"], c["gx"], c["gy"],
                c["n"], c["h"],
                montgomery_friendly=(name == "P-256"))
        else:
            _REGISTRY[name] = BinaryCurve(
                name, c["field"], c["a"], c["b"], c["gx"], c["gy"],
                c["n"], c["h"])


_build_registry()


def get_curve(name: str) -> Curve:
    """Look up a registered curve by NIST name (e.g. ``"P-256"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise EcError(
            f"unknown curve {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_curves() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
