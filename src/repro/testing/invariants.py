"""Cross-layer invariants checked after every fuzzed scenario.

Each checker inspects the finished world (a
:class:`~repro.bench.runner.Testbed`) and returns a list of violation
strings — empty means the invariant holds. The registry is the
catalogue DESIGN.md section 10 documents; ``tools/fuzz_scenarios.py``
runs every applicable checker after every scenario, and the corpus
replay tests run them as ordinary assertions.

Checkers read only introspection surfaces (ledgers, audit logs,
snapshots) added for this purpose; they never mutate the world, so a
post-check fingerprint equals a pre-check one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

__all__ = ["Violation", "INVARIANTS", "register", "check_all",
           "iter_engines", "all_workers"]

#: Sum-of-exact-floats slack (simulated timestamps are exact doubles,
#: but span-duration sums accumulate rounding).
EPS = 1e-9


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which checker, and what it saw."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.detail}"


#: (name, checker) registry, in check order.
INVARIANTS: List[Tuple[str, Callable]] = []


def register(name: str):
    def deco(fn):
        INVARIANTS.append((name, fn))
        return fn
    return deco


def check_all(bed) -> List[Violation]:
    """Run every registered checker; collect all violations."""
    out: List[Violation] = []
    for name, fn in INVARIANTS:
        for detail in fn(bed):
            out.append(Violation(name, detail))
    return out


# -- world iteration helpers -------------------------------------------------

def all_workers(server) -> list:
    """Every incarnation that ever served: live, retired, and any still
    draining under the supervisor (deduplicated)."""
    seen, out = set(), []
    candidates = list(server.workers) + list(server.retired_workers)
    for record in getattr(server.supervisor, "draining_records", ()):
        worker = getattr(record, "worker", None)
        if worker is not None:
            candidates.append(worker)
    for w in candidates:
        if id(w) not in seen:
            seen.add(id(w))
            out.append(w)
    return out


def iter_engines(server):
    """(worker, AsyncOffloadEngine) pairs across every incarnation."""
    from ..offload.engine import AsyncOffloadEngine
    for w in all_workers(server):
        if isinstance(w.engine, AsyncOffloadEngine):
            yield w, w.engine


def _tag(w) -> str:
    return f"w{w.worker_id}g{w.generation}"


# -- 1. op conservation ------------------------------------------------------

@register("op-conservation")
def check_op_conservation(bed) -> List[str]:
    """Every accepted op is retired exactly once: the lifetime ledger
    difference equals the live in-flight count, which equals what the
    engine tables actually hold. A double-retire drives the difference
    negative (InflightCounters raises first in most paths); a lost op
    strands the difference above the table population."""
    out = []
    for w, eng in iter_engines(bed.server):
        diff = eng.ledger_accepted - eng.ledger_retired
        tables = len(eng._pending) + len(eng._batch)
        if diff < 0:
            out.append(f"{_tag(w)}: ledger negative "
                       f"({eng.ledger_accepted}-{eng.ledger_retired})")
        if diff != eng.inflight.total:
            out.append(f"{_tag(w)}: ledger diff {diff} != "
                       f"inflight {eng.inflight.total}")
        # Sync (blocking) offload charges the in-flight counters while
        # the fiber waits inline, without a _pending entry: the table
        # identity — and the everything-retired-at-death guarantee the
        # async teardown path provides via abort_all() — are
        # async-mode properties.
        if w.config.ssl_engine.qat_offload_mode != "async":
            continue
        if diff != tables:
            out.append(f"{_tag(w)}: ledger diff {diff} != "
                       f"pending+batch {tables}")
        if not w.running and not w.conns and diff != 0:
            out.append(f"{_tag(w)}: dead worker still holds {diff} "
                       "unretired op(s)")
    return out


# -- 2. tombstoned-epoch isolation -------------------------------------------

@register("tombstone-isolation")
def check_tombstone_isolation(bed) -> List[str]:
    """A completion owned by a retired (crashed/reloaded-away) lease
    epoch must be tombstoned at the ring — never queued for delivery to
    any live worker. The injected ``lease-epoch`` bug violates exactly
    this."""
    pool = bed.server.instance_pool
    if pool is None:
        return []
    out = []
    leaked = pool.retired_inbox_entries()
    if leaked:
        out.append(f"{leaked} completion(s) queued for retired epochs")
    for when, worker, epoch in pool.tombstone_log:
        if (worker, epoch) not in pool._retired:
            out.append(f"tombstone at t={when} for live epoch "
                       f"({worker},{epoch})")
    for w in all_workers(bed.server):
        backend = getattr(w.engine, "backend", None)
        if backend is None or not hasattr(backend, "epoch"):
            continue
        if w.running and pool.is_retired(backend.worker_id, backend.epoch) \
                and w in bed.server.workers:
            out.append(f"{_tag(w)}: live worker bound to retired epoch "
                       f"({backend.worker_id},{backend.epoch})")
    return out


# -- 3. pool lease partition -------------------------------------------------

@register("lease-partition")
def check_lease_partition(bed) -> List[str]:
    """Under the exclusive policies (static, dynamic) the lease map
    must partition the instances at every mutation tick: no lane leased
    twice, no lane unleased. (The shared policy overlaps by design and
    is exempt.)"""
    pool = bed.server.instance_pool
    if pool is None or pool.policy.name == "shared":
        return []
    out = []
    lanes = set(range(len(pool.drivers)))
    for when, snapshot in pool.lease_audit:
        seen: dict = {}
        for wid, leased in enumerate(snapshot):
            if len(set(leased)) != len(leased):
                out.append(f"t={when}: w{wid} leases a lane twice "
                           f"{leased}")
            for lane in leased:
                if lane in seen:
                    out.append(f"t={when}: lane {lane} leased to both "
                               f"w{seen[lane]} and w{wid}")
                seen[lane] = wid
        missing = lanes - set(seen)
        if missing:
            out.append(f"t={when}: lanes {sorted(missing)} leased to "
                       "no worker")
    # The mirror set must match the list representation right now.
    for wid, leased in enumerate(pool.leases):
        if set(leased) != pool._lease_sets[wid]:
            out.append(f"w{wid}: lease list {leased} != lease set "
                       f"{sorted(pool._lease_sets[wid])}")
    return out


# -- 4. scheduler lanes and budgets ------------------------------------------

@register("scheduler-sanity")
def check_scheduler(bed) -> List[str]:
    """Lane depths and counters never negative, the aggregate queue
    count is the sum of the lanes, and no connection ever exceeded its
    in-flight budget (watermark check, so mid-run breaches are caught
    at exit)."""
    out = []
    for w, eng in iter_engines(bed.server):
        sched = eng.scheduler
        if sched.queued != sum(lane.depth for lane in sched.lanes):
            out.append(f"{_tag(w)}: queued {sched.queued} != sum of "
                       "lane depths")
        for lane in sched.lanes:
            for attr in ("enqueued", "served", "starved", "expired",
                         "peak"):
                if getattr(lane, attr) < 0:
                    out.append(f"{_tag(w)}/{lane.name}: {attr} negative")
            if lane.depth > lane.peak:
                out.append(f"{_tag(w)}/{lane.name}: depth {lane.depth} "
                           f"above peak {lane.peak}")
        budget = eng.conn_budget
        if budget:
            if sched.conn_peak > budget:
                out.append(f"{_tag(w)}: conn in-flight peaked at "
                           f"{sched.conn_peak} > budget {budget}")
            for conn, held in sched._conn_inflight.items():
                if held <= 0 or held > budget:
                    out.append(f"{_tag(w)}: conn {conn} holds {held} "
                               f"(budget {budget})")
        if eng.admission_limit is not None \
                and eng.inflight.total > eng.admission_limit:
            out.append(f"{_tag(w)}: {eng.inflight.total} ops in flight "
                       f"above admission limit {eng.admission_limit}")
    return out


# -- 5. span-tree well-formedness --------------------------------------------

@register("span-well-formed")
def check_spans(bed) -> List[str]:
    """Every closed trace is a well-formed span tree with monotone
    stage marks and a terminal status (the tests/obs invariants, run
    against arbitrary fuzzed schedules)."""
    tracer = bed.tracer
    if tracer is None:
        return []
    from ..obs import MARK_ORDER, SpanStatus
    out = []
    if tracer.ops_closed != len(tracer.traces):
        out.append(f"ops_closed {tracer.ops_closed} != "
                   f"{len(tracer.traces)} recorded traces")
    if tracer.ops_started != tracer.ops_closed + len(tracer.open):
        out.append("ops_started != closed + open")
    for trace in tracer.traces:
        spans = trace.spans()
        root, stages = spans[0], spans[1:]
        if root.parent is not None or root.start != trace.created \
                or root.end != trace.finished:
            out.append(f"{trace}: malformed root span")
            continue
        if any(s.parent != root.name for s in stages):
            out.append(f"{trace}: stage outside the root")
        if root.duration < 0 or any(s.duration < 0 for s in stages):
            out.append(f"{trace}: negative span duration")
        if any(s.start < root.start - EPS or s.end > root.end + EPS
               for s in stages):
            out.append(f"{trace}: stage outside root lifetime")
        if sum(s.duration for s in stages) > root.duration + EPS:
            out.append(f"{trace}: stage durations exceed root wall time")
        recorded = [trace.marks[m] for m in MARK_ORDER if m in trace.marks]
        if recorded != sorted(recorded):
            out.append(f"{trace}: marks out of pipeline order")
        if recorded and (trace.created > recorded[0]
                         or recorded[-1] > trace.finished):
            out.append(f"{trace}: marks outside op lifetime")
        if trace.status not in SpanStatus.TERMINAL:
            out.append(f"{trace}: closed with non-terminal status")
    for trace in tracer.open.values():
        if trace.closed:
            out.append(f"{trace}: closed trace still in the open table")
    return out


# -- 6. stub_status consistency ----------------------------------------------

@register("stub-consistency")
def check_stub_status(bed) -> List[str]:
    """Read through the consistent-snapshot helper, the stub_status
    page must agree with the engine ledgers that feed it, and its
    connection accounting must balance. (A raw mid-pass read may lag —
    that is exactly why the helper exists; see
    ``Worker.status_snapshot``.)"""
    from ..offload.engine import AsyncOffloadEngine
    out = []
    snap = bed.server.consistent_status_snapshot()
    by_key = {f"w{w.worker_id}g{w.generation}": w
              for w in (list(bed.server.workers)
                        + list(bed.server.retired_workers))}
    for key, stub in snap["workers"].items():
        w = by_key[key]
        if stub["tls_alive"] != stub["accepted"] - stub["closed"]:
            out.append(f"{key}: alive {stub['tls_alive']} != accepted "
                       f"{stub['accepted']} - closed {stub['closed']}")
        if not 0 <= stub["tls_idle"] <= stub["tls_alive"]:
            out.append(f"{key}: idle {stub['tls_idle']} outside "
                       f"[0, alive={stub['tls_alive']}]")
        eng = w.engine
        if not isinstance(eng, AsyncOffloadEngine):
            continue
        for stub_key, eng_val in (
                ("fallback_ops", eng.ops_fallback),
                ("op_timeouts", eng.op_timeouts),
                ("submit_failures", eng.submit_rejections),
                ("batches_submitted", eng.batches_submitted),
                ("batch_ops", eng.batch_ops)):
            if stub[stub_key] != eng_val:
                out.append(f"{key}: stub {stub_key} {stub[stub_key]} != "
                           f"engine {eng_val}")
    # Driver-level totals can only lag the engine totals (ops that
    # expired while still queued never reached a driver).
    fw = snap["fw"]
    if fw:
        engines = [eng for _, eng in iter_engines(bed.server)]
        if engines:
            eng_timeouts = sum(e.op_timeouts for e in engines)
            eng_fallbacks = sum(e.ops_fallback for e in engines)
            if fw.get("driver.op_timeouts", 0) > eng_timeouts:
                out.append(f"fw driver.op_timeouts "
                           f"{fw['driver.op_timeouts']} exceeds engine "
                           f"total {eng_timeouts}")
            if fw.get("driver.fallback_ops", 0) > eng_fallbacks:
                out.append(f"fw driver.fallback_ops "
                           f"{fw['driver.fallback_ops']} exceeds engine "
                           f"total {eng_fallbacks}")
    return out


# -- 7. lifecycle journal ----------------------------------------------------

@register("lifecycle-journal")
def check_lifecycle(bed) -> List[str]:
    """The supervision journal is time-ordered and its counters match
    the events it records."""
    sup = bed.server.supervisor
    out = []
    times = [t for t, _, _ in sup.events]
    if times != sorted(times):
        out.append("journal timestamps out of order")
    crashes = sum(1 for _, kind, _ in sup.events if kind == "worker-crash")
    if crashes != sup.crashes:
        out.append(f"crash counter {sup.crashes} != {crashes} "
                   "journaled crash events")
    if sup.respawns > sup.crashes:
        out.append(f"respawns {sup.respawns} exceed crashes "
                   f"{sup.crashes}")
    for counter in ("crashes", "respawns", "reloads",
                    "reload_rejections", "forced_aborts"):
        if getattr(sup, counter) < 0:
            out.append(f"negative counter {counter}")
    return out


# -- 8. client metrics sanity ------------------------------------------------

@register("metrics-sanity")
def check_metrics(bed) -> List[str]:
    """Client-side measurements are physically possible: non-negative
    durations, completion times inside the run, recorded in completion
    order."""
    out = []
    m = bed.metrics
    now = bed.sim.now
    for series_name, series in (("handshakes", m.handshakes),
                                ("requests", m.requests)):
        times = [e[0] for e in series]
        if times != sorted(times):
            out.append(f"{series_name} not in completion order")
        if any(t < 0 or t > now + EPS for t in times):
            out.append(f"{series_name} timestamp outside the run")
        if any(e[1] < 0 for e in series):
            out.append(f"{series_name} with negative duration")
    if m.errors < 0:
        out.append("negative error count")
    return out
