"""Shared fixtures/helpers for the test and benchmark suites.

``tests/conftest.py`` and ``benchmarks/conftest.py`` had drifted into
near-duplicates of each other (and several test modules re-implemented
the same QAT environment builder); the canonical versions live here so
both suites — and any ad-hoc script — assemble identical worlds.

Everything here is deterministic: environments are seeded through
:class:`~repro.sim.rng.RngRegistry` and runs replay bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, NamedTuple, Optional

from ..core.costmodel import CostModel
from ..cpu.core import Core
from ..crypto.ops import CryptoOp, CryptoOpKind
from ..engine.qat_engine import QatEngine
from ..obs import RequestTracer
from ..qat.device import QatDevice
from ..qat.driver import QatUserspaceDriver
from ..qat.faults import FaultPlan
from ..qat.rings import DEFAULT_RING_CAPACITY
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from ..ssl.async_job import FiberAsyncJob
from ..tls.actions import CryptoCall

__all__ = ["rsa_call", "make_job", "make_qat_env", "QatEnv",
           "failed_checks", "assert_checks",
           "TEST_RNG_SEED", "TEST_REGISTRY_SEED"]

#: Seeds shared by tests/conftest.py and benchmarks/conftest.py — one
#: definition, so the suites cannot drift.
TEST_RNG_SEED = 0xDEADBEEF
TEST_REGISTRY_SEED = 42


def rsa_call(result: Any = "sig", rsa_bits: int = 2048) -> CryptoCall:
    """A canonical offloadable op: an RSA private-key operation whose
    deferred computation returns ``result``."""
    return CryptoCall(CryptoOp(CryptoOpKind.RSA_PRIV, rsa_bits=rsa_bits),
                      compute=lambda: result)


def make_job(kind: str = "handshake",
             paused_on: Optional[CryptoCall] = None) -> FiberAsyncJob:
    """A fiber offload job with an empty body — enough for engine-layer
    tests that drive submission/delivery directly. Pass ``paused_on``
    to start it paused on that call (the usual pre-submission state)."""
    job = FiberAsyncJob(lambda: iter(()), kind=kind)
    if paused_on is not None:
        job.mark_paused(paused_on)
    return job


class QatEnv(NamedTuple):
    """One assembled QAT world (see :func:`make_qat_env`)."""

    sim: Simulator
    core: Core
    engine: QatEngine
    device: QatDevice
    drivers: List[QatUserspaceDriver]
    tracer: Optional[RequestTracer]


def make_qat_env(n_instances: int = 1,
                 ring_capacity: int = DEFAULT_RING_CAPACITY,
                 plan_kw: Optional[Dict] = None, seed: int = 7,
                 trace: bool = False,
                 **engine_kw) -> QatEnv:
    """Simulator + core + QAT device + engine, in one call.

    ``plan_kw`` installs a seeded :class:`~repro.qat.faults.FaultPlan`
    (kwargs form); ``trace`` attaches a
    :class:`~repro.obs.tracer.RequestTracer` as ``sim.obs``; engine
    kwargs (``batch_size``, ``request_deadline``, ...) pass through to
    :class:`~repro.engine.qat_engine.QatEngine`.
    """
    sim = Simulator()
    tracer = None
    if trace:
        tracer = RequestTracer(enabled=True)
        sim.obs = tracer
    core = Core(sim, 0)
    dev = QatDevice(sim, n_endpoints=max(1, n_instances),
                    ring_capacity=ring_capacity)
    if plan_kw is not None:
        dev.install_fault_plan(
            FaultPlan(RngRegistry(seed).stream("faults"), **plan_kw))
    drivers = [QatUserspaceDriver(inst)
               for inst in dev.allocate_instances(n_instances)]
    eng = QatEngine(drivers, core, CostModel(), **engine_kw)
    return QatEnv(sim, core, eng, dev, drivers, tracer)


# -- experiment shape checks (bench harness + CI smoke scripts) -------------

def failed_checks(result) -> List[dict]:
    """The experiment's failed shape checks (empty = all good)."""
    return [c for c in result.checks if not c["ok"]]


def assert_checks(result) -> None:
    """Raise AssertionError listing every failed shape check."""
    failed = failed_checks(result)
    assert not failed, (
        f"{result.exp_id}: shape checks failed: "
        + "; ".join(c["claim"] for c in failed))
