"""Deterministic scenario generation and execution (simulation fuzzing).

FoundationDB-style testing for the offload stack: one seeded RNG draws
a random server configuration, a random client mix, a random fault
schedule and random mid-run lifecycle actions, so the whole scenario —
generation *and* execution — is identified by ``(HARNESS_VERSION,
seed)``. ``tools/fuzz_scenarios.py`` runs thousands of these and
checks the :mod:`repro.testing.invariants` catalogue after each;
failures shrink to a minimal spec via :mod:`repro.testing.shrink`.

Scenario specs are plain data (JSON round-trippable) so a shrunk
counterexample can be replayed directly, without its original seed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..bench.runner import Testbed
from ..core.configurations import make_server_config

__all__ = ["HARNESS_VERSION", "ClientSpec", "ActionSpec", "ScenarioSpec",
           "ScenarioGen", "ScenarioResult", "run_scenario", "fingerprint"]

#: Bump whenever generation changes: a corpus seed names the scenario
#: produced by THIS generator, so drift must be explicit.
#: v2: retrieval-mode sampling (qat_poll_mode flips, timer poll
#: interval, failover timer) — every draw after the override block
#: shifted, so v1 corpus seeds replay from their archived specs
#: (``tests/fuzz/corpus_v1_specs.json``), not by regeneration.
HARNESS_VERSION = 2

#: Suite choices per TLS version (server preference order irrelevant
#: here — one or two suites are offered).
SUITES_12 = ("TLS-RSA", "ECDHE-RSA", "ECDHE-ECDSA")
SUITES_13 = ("TLS1.3-ECDHE-RSA",)

#: Paper configuration names, weighted toward the async framework (the
#: interleavings worth fuzzing live there).
CONFIG_WEIGHTS = (("QTLS", 0.40), ("QAT+AH", 0.25), ("QAT+A", 0.15),
                  ("QAT+S", 0.10), ("SW", 0.10))


@dataclass
class ClientSpec:
    """One client fleet: an s_time CPS load or an ab transfer load."""

    kind: str = "s_time"            # "s_time" | "ab"
    n_clients: int = 8
    full_ratio: float = 1.0         # s_time: 1.0 = all full handshakes
    stagger: float = 0.02
    keepalive: bool = True          # ab
    file_size: int = 4096           # ab


@dataclass
class ActionSpec:
    """One mid-run lifecycle action fired at an absolute sim time."""

    kind: str                        # "reload" | "crash"
    at: float
    slot: int = 0                    # crash target
    mutation: Dict[str, Any] = field(default_factory=dict)  # reload


@dataclass
class ScenarioSpec:
    """A complete randomized scenario, as replayable plain data."""

    seed: int
    config_name: str = "QTLS"
    workers: int = 1
    suites: Tuple[str, ...] = ("TLS-RSA",)
    tls_version: str = "1.2"
    duration: float = 0.05
    trace: bool = False
    overrides: Dict[str, Any] = field(default_factory=dict)
    clients: List[ClientSpec] = field(default_factory=list)
    faults: Optional[Dict[str, Any]] = None
    actions: List[ActionSpec] = field(default_factory=list)
    harness_version: int = HARNESS_VERSION

    def to_dict(self) -> dict:
        d = asdict(self)
        d["suites"] = list(self.suites)
        return d

    @classmethod
    def from_dict(cls, d: dict,
                  allow_legacy: bool = False) -> "ScenarioSpec":
        """Rebuild a spec from its JSON form. ``allow_legacy`` accepts
        specs archived by an older generator (replay-by-spec is
        version-independent — the spec is plain config data); without
        it, a version mismatch is an error so corpus seeds never
        silently name a different scenario."""
        d = dict(d)
        version = d.pop("harness_version", HARNESS_VERSION)
        if version != HARNESS_VERSION and not (
                allow_legacy and 1 <= version < HARNESS_VERSION):
            raise ValueError(
                f"spec written by harness v{version}, this is "
                f"v{HARNESS_VERSION}; regenerate or replay by spec only")
        d["suites"] = tuple(d.get("suites", ("TLS-RSA",)))
        d["clients"] = [ClientSpec(**c) for c in d.get("clients", [])]
        d["actions"] = [ActionSpec(**a) for a in d.get("actions", [])]
        return cls(harness_version=version, **d)

    def describe(self) -> str:
        """One-line feature summary (corpus comments, shrink logs)."""
        bits = [self.config_name, f"w{self.workers}",
                f"tls{self.tls_version}",
                f"{len(self.clients)}fleet"]
        if self.overrides.get("offload_backend", "qat") != "qat":
            bits.append(self.overrides["offload_backend"])
        if self.overrides.get("qat_instance_policy", "static") != "static":
            bits.append(self.overrides["qat_instance_policy"])
        if self.overrides.get("offload_sched_policy", "fifo") != "fifo":
            bits.append(self.overrides["offload_sched_policy"])
        if self.overrides.get("offload_admission_limit"):
            bits.append(f"adm{self.overrides['offload_admission_limit']}")
        if self.overrides.get("qat_notify_mode") == "interrupt":
            bits.append("irq")
        if self.overrides.get("qat_poll_mode"):
            bits.append("poll-" + self.overrides["qat_poll_mode"])
        if self.overrides.get("qat_timer_poll_interval"):
            bits.append(
                f"tick{self.overrides['qat_timer_poll_interval'] * 1e6:.0f}us")
        if "qat_failover_timer" in self.overrides:
            fo = self.overrides["qat_failover_timer"]
            bits.append("fo-off" if fo == 0 else f"fo{fo * 1e3:g}ms")
        if self.faults:
            bits.append("faults:" + ",".join(sorted(
                k for k in self.faults
                if not k.endswith("_window") and not k.endswith("_factor"))))
        for a in self.actions:
            bits.append(a.kind)
        return " ".join(bits)


class ScenarioGen:
    """Draws :class:`ScenarioSpec`\\ s from a single seeded stream."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)

    # small typed draw helpers (one RNG, deterministic order) ---------------

    def _choice(self, options, weights=None):
        if weights is not None:
            total = float(sum(weights))
            p = [w / total for w in weights]
            idx = self.rng.choice(len(options), p=p)
            return options[int(idx)]
        return options[int(self.rng.integers(len(options)))]

    def _flag(self, p: float) -> bool:
        return bool(self.rng.random() < p)

    def _int(self, lo: int, hi: int) -> int:
        return int(self.rng.integers(lo, hi + 1))

    def _uniform(self, lo: float, hi: float) -> float:
        return float(self.rng.uniform(lo, hi))

    # scenario dimensions ---------------------------------------------------

    def generate(self) -> ScenarioSpec:
        names, weights = zip(*CONFIG_WEIGHTS)
        config_name = self._choice(names, weights)
        workers = self._choice((1, 1, 2, 2, 3))
        tls_version = "1.3" if self._flag(0.25) else "1.2"
        if tls_version == "1.3":
            suites = SUITES_13
        else:
            k = 1 if self._flag(0.7) else 2
            idx = self.rng.permutation(len(SUITES_12))[:k]
            suites = tuple(SUITES_12[int(i)] for i in idx)
        duration = self._uniform(0.04, 0.08)
        overrides = self._gen_overrides(config_name, workers)
        uses_qat = (config_name != "SW"
                    and overrides.get("offload_backend", "qat") == "qat")
        spec = ScenarioSpec(
            seed=self.seed, config_name=config_name, workers=workers,
            suites=suites, tls_version=tls_version, duration=duration,
            trace=self._flag(0.3), overrides=overrides,
            clients=self._gen_clients(workers),
            faults=(self._gen_faults(workers, duration, uses_qat)
                    if uses_qat and self._flag(0.6) else None),
            actions=self._gen_actions(config_name, workers, duration,
                                      uses_qat))
        # Prove the composed configuration is valid before shipping the
        # spec anywhere (generation bugs fail here, not mid-run).
        make_server_config(spec.config_name, workers=spec.workers,
                           suites=spec.suites, tls_version=spec.tls_version,
                           **spec.overrides)
        return spec

    def _gen_overrides(self, config_name: str, workers: int) -> dict:
        ov: Dict[str, Any] = {}
        if config_name == "SW":
            return ov
        backend = self._choice(("qat", "qat", "qat", "qat", "qat",
                                "remote", "software"))
        if backend != "qat":
            ov["offload_backend"] = backend
        async_config = config_name in ("QAT+A", "QAT+AH", "QTLS")
        if backend == "qat":
            if self._flag(0.4):
                ov["qat_instances_per_worker"] = 2
            policy = self._choice(("static", "static", "shared", "dynamic"))
            if policy != "static":
                ov["qat_instance_policy"] = policy
                if policy == "dynamic":
                    ov["qat_rebalance_interval"] = self._uniform(1e-3, 5e-3)
            elif async_config and self._flag(0.10):
                # Interrupt notification: qat + static only (validated).
                ov["qat_notify_mode"] = "interrupt"
        if async_config:
            if self._flag(0.45):
                ov["offload_admission_limit"] = self._int(4, 24)
            sched = self._choice(("fifo", "fifo", "strict-priority",
                                  "weighted-fair"))
            if sched != "fifo":
                ov["offload_sched_policy"] = sched
                if sched == "weighted-fair" and self._flag(0.5):
                    ov["offload_sched_weights"] = {
                        "handshake-asym": self._int(4, 12),
                        "prf": self._int(1, 4),
                        "record-cipher": self._int(1, 2)}
            if self._flag(0.35):
                ov["offload_conn_budget"] = self._int(1, 4)
            if self._flag(0.4):
                ov["qat_batch_size"] = self._choice((2, 4, 8))
            if self._flag(0.5):
                ov["qat_request_deadline"] = self._uniform(8e-3, 25e-3)
            if self._flag(0.5):
                ov["qat_watchdog_interval"] = self._uniform(1e-3, 5e-3)
        if async_config and backend == "qat":
            # Retrieval mode: flip the configuration's default polling
            # scheme, stretch the timer tick, toggle the heuristic
            # failover sweep — the reactor must wire all of them.
            default_poll = "timer" if config_name == "QAT+A" else "heuristic"
            if self._flag(0.25):
                mode = self._choice(("heuristic", "timer"))
                if mode != default_poll:
                    ov["qat_poll_mode"] = mode
            effective_poll = ov.get("qat_poll_mode", default_poll)
            if (ov.get("qat_notify_mode") != "interrupt"
                    and effective_poll == "timer" and self._flag(0.6)):
                ov["qat_timer_poll_interval"] = self._choice(
                    (5e-6, 10e-6, 25e-6, 50e-6))
            if self._flag(0.3):
                ov["qat_failover_timer"] = self._choice((0.0, 1e-3, 2.5e-3))
        if self._flag(0.3):
            ov["worker_respawn"] = self._flag(0.7)
            ov["max_respawns"] = self._int(0, 3)
        if self._flag(0.4):
            ov["worker_drain_timeout"] = self._uniform(10e-3, 50e-3)
        if self._flag(0.2):
            ov["session_tickets"] = True
        return ov

    def _gen_clients(self, workers: int) -> List[ClientSpec]:
        fleets = []
        for _ in range(self._int(1, 3)):
            if self._flag(0.6):
                fleets.append(ClientSpec(
                    kind="s_time",
                    n_clients=self._int(4, 8 * workers + 8),
                    full_ratio=self._choice((1.0, 1.0, 0.5, 0.0)),
                    stagger=self._uniform(0.005, 0.03)))
            else:
                fleets.append(ClientSpec(
                    kind="ab",
                    n_clients=self._int(2, 4 * workers + 4),
                    keepalive=self._flag(0.7),
                    file_size=self._choice((1024, 4096, 16384, 65536)),
                    stagger=self._uniform(0.005, 0.02)))
        return fleets

    def _gen_faults(self, workers: int, duration: float,
                    uses_qat: bool) -> Optional[Dict[str, Any]]:
        if not uses_qat:
            return None
        faults: Dict[str, Any] = {}
        if self._flag(0.45):
            faults["response_loss"] = self._uniform(0.05, 0.35)
            if self._flag(0.6):
                faults["response_loss_window"] = self._window(duration)
        if self._flag(0.35):
            faults["latency_spike_rate"] = self._uniform(0.1, 0.5)
            faults["latency_spike_factor"] = self._uniform(5.0, 20.0)
            if self._flag(0.6):
                faults["latency_spike_window"] = self._window(duration)
        if self._flag(0.3):
            # dh8970 has three endpoints; None = whole-card outage.
            ep = self._choice((None, 0, 1, 2))
            faults["outages"] = [(ep,) + self._window(duration)]
        if self._flag(0.2):
            faults["resets"] = [(self._int(0, 2),
                                 self._uniform(0.2, 0.8) * duration)]
        if self._flag(0.35):
            faults["worker_crashes"] = [
                (self._int(0, workers - 1),
                 self._uniform(0.2, 0.7) * duration)]
        if self._flag(0.15):
            faults["ring_full_windows"] = [self._window(duration)]
        return faults or None

    def _window(self, duration: float) -> Tuple[float, float]:
        a = self._uniform(0.1, 0.6) * duration
        b = a + self._uniform(0.1, 0.4) * duration
        return (a, b)

    def _gen_actions(self, config_name: str, workers: int,
                     duration: float, uses_qat: bool) -> List[ActionSpec]:
        actions: List[ActionSpec] = []
        async_config = config_name in ("QAT+A", "QAT+AH", "QTLS")
        if self._flag(0.35):
            actions.append(ActionSpec(
                kind="reload", at=self._uniform(0.25, 0.7) * duration,
                mutation=self._gen_reload_mutation(async_config)))
        if uses_qat and self._flag(0.3):
            actions.append(ActionSpec(
                kind="crash", at=self._uniform(0.25, 0.8) * duration,
                slot=self._int(0, workers - 1)))
        actions.sort(key=lambda a: a.at)
        return actions

    def _gen_reload_mutation(self, async_config: bool) -> Dict[str, Any]:
        """A config delta limited to reloadable fields (immutable ones
        — workers, suites, backend, instance policy — would make the
        supervisor reject the reload, which is its own test, exercised
        separately in tests/integration)."""
        mut: Dict[str, Any] = {}
        if async_config:
            if self._flag(0.5):
                mut["offload_admission_limit"] = self._choice((0, 4, 8, 16))
            if self._flag(0.4):
                mut["offload_sched_policy"] = self._choice(
                    ("fifo", "strict-priority", "weighted-fair"))
            if self._flag(0.3):
                mut["offload_conn_budget"] = self._choice((0, 2, 4))
            if self._flag(0.3):
                mut["qat_batch_size"] = self._choice((1, 4, 8))
        if self._flag(0.4):
            mut["worker_drain_timeout"] = self._uniform(10e-3, 40e-3)
        if self._flag(0.2):
            mut["session_tickets"] = self._flag(0.5)
        return mut


# -- execution ---------------------------------------------------------------

@dataclass
class ScenarioResult:
    """A finished run: the world plus its replay fingerprint."""

    spec: ScenarioSpec
    bed: Testbed
    fingerprint: str


def _merged_overrides(spec: ScenarioSpec, mutation: Dict[str, Any]) -> dict:
    merged = dict(spec.overrides)
    merged.update(mutation)
    return merged


def build_reload_config(spec: ScenarioSpec, mutation: Dict[str, Any]):
    """The candidate config a scenario 'reload' action hands to the
    supervisor: the spec's own base with reloadable fields mutated."""
    return make_server_config(
        spec.config_name, workers=spec.workers, suites=spec.suites,
        tls_version=spec.tls_version, **_merged_overrides(spec, mutation))


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one spec to completion and fingerprint the world."""
    bed = Testbed(spec.config_name, workers=spec.workers,
                  suites=spec.suites, tls_version=spec.tls_version,
                  seed=spec.seed % (2 ** 31) or 7,
                  fault_plan=spec.faults, trace=spec.trace,
                  **spec.overrides)
    for c in spec.clients:
        if c.kind == "s_time":
            bed.add_s_time_fleet(n_clients=c.n_clients,
                                 full_ratio=c.full_ratio,
                                 stagger=c.stagger)
        elif c.kind == "ab":
            bed.add_ab_fleet(n_clients=c.n_clients, file_size=c.file_size,
                             keepalive=c.keepalive, stagger=c.stagger)
        else:
            raise ValueError(f"unknown client kind {c.kind!r}")
    for action in spec.actions:
        if action.kind == "reload":
            mutation = dict(action.mutation)

            def fire_reload(mutation=mutation):
                bed.server.reload(build_reload_config(spec, mutation))
            bed.sim.call_at(action.at, fire_reload)
        elif action.kind == "crash":
            def fire_crash(slot=action.slot):
                bed.server.supervisor.crash_worker(slot, cause="scenario")
            bed.sim.call_at(action.at, fire_crash)
        else:
            raise ValueError(f"unknown action kind {action.kind!r}")
    bed.sim.run(until=spec.duration)
    return ScenarioResult(spec, bed, fingerprint(bed))


def fingerprint(bed: Testbed) -> str:
    """A byte-exact digest of everything observable about the finished
    world. Two same-seed runs must produce identical strings — the
    determinism invariant compares these directly."""
    from ..offload.engine import AsyncOffloadEngine
    server = bed.server
    lines: List[str] = []
    m = bed.metrics
    lines.append(f"handshakes={m.handshakes!r}")
    lines.append(f"requests={m.requests!r}")
    lines.append(f"errors={m.errors}")
    lines.append(f"server_metrics={sorted(server.metrics_snapshot().items())!r}")
    for w in list(server.workers) + list(server.retired_workers):
        tag = f"w{w.worker_id}g{w.generation}"
        eng = w.engine
        if isinstance(eng, AsyncOffloadEngine):
            lines.append(
                f"{tag} ledger={eng.ledger_accepted}/{eng.ledger_retired} "
                f"off={eng.ops_offloaded} sw={eng.ops_software} "
                f"fb={eng.ops_fallback} to={eng.op_timeouts} "
                f"stale={eng.responses_stale} drain={eng.ops_drained} "
                f"abort={eng.ops_aborted} disp={eng.responses_dispatched} "
                f"adm={eng.admission_enqueued}/{eng.admission_admitted}")
            lines.append(f"{tag} sched={sorted(eng.scheduler.snapshot().items())!r}")
        lines.append(f"{tag} stub={w.status_snapshot()!r}")
    lines.append(f"supervisor={sorted(server.supervisor.snapshot().items())!r}")
    lines.append(f"events={server.supervisor.events!r}")
    pool = server.instance_pool
    if pool is not None:
        lines.append(f"pool={sorted(pool.snapshot().items())!r}")
        lines.append(f"migrations={pool.migration_log!r}")
        lines.append(f"tombstones={pool.tombstone_log!r}")
    if bed.fault_plan is not None:
        lines.append(f"faults={sorted(bed.fault_plan.counters().items())!r}")
        lines.append(f"fault_trace={bed.fault_plan.trace()!r}")
    if bed.device is not None:
        lines.append(f"fw={sorted(bed.device.fw_counter_totals().items())!r}")
    if bed.tracer is not None:
        lines.append(f"trace={sorted(bed.tracer.snapshot_counts().items())!r}")
    return "\n".join(lines)
