"""Test/benchmark support package.

Grew out of a single helpers module (PR 3) into the deterministic
simulation-testing harness (PR 8):

- :mod:`repro.testing.helpers` — shared environment builders and shape
  checks used by ``tests/conftest.py`` and ``benchmarks/conftest.py``;
- :mod:`repro.testing.scenario` — seeded random scenario generation
  (config x workload x faults x lifecycle) and execution;
- :mod:`repro.testing.invariants` — cross-layer invariant checkers run
  against the finished world;
- :mod:`repro.testing.shrink` — greedy minimization of failing
  scenario specs.

The helper names are re-exported here so ``from repro.testing import
make_qat_env`` keeps working exactly as before the package split.
"""

from .helpers import (  # noqa: F401
    TEST_REGISTRY_SEED,
    TEST_RNG_SEED,
    QatEnv,
    assert_checks,
    failed_checks,
    make_job,
    make_qat_env,
    rsa_call,
)

__all__ = ["rsa_call", "make_job", "make_qat_env", "QatEnv",
           "failed_checks", "assert_checks",
           "TEST_RNG_SEED", "TEST_REGISTRY_SEED"]
