"""Greedy minimization of failing scenario specs.

When ``tools/fuzz_scenarios.py`` finds a seed whose world violates an
invariant, the raw spec is usually far bigger than the bug needs: three
client fleets, several fault kinds, multiple lifecycle actions. The
shrinker repeatedly proposes smaller variants — drop a fleet, drop a
fault, drop an action, halve the client count, halve the duration,
remove a worker — and keeps any variant on which the scenario *still
fails*. The result is the smallest spec this greedy pass can reach,
replayable directly from its JSON form (shrunk specs are no longer
derivable from the original seed).

The failure oracle is a caller-supplied ``fails(spec) -> Optional[str]``
returning a failure description (first violation, or the exception
text) or None when the spec passes. A shrink step is accepted whenever
the variant still fails — on *any* invariant, not necessarily the
original one: chasing the exact same symptom makes shrinking brittle
while any surviving violation still points at the bug.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator, Optional, Tuple

from .scenario import ScenarioSpec

__all__ = ["shrink", "shrink_report"]

#: Never shrink the run below this horizon — the world needs time for
#: at least one handshake to exercise anything.
MIN_DURATION = 0.01

#: Cap on *accepted* shrink steps. Every accepted step strictly
#: shrinks the spec, so this only guards against a pathological
#: oracle; real specs reach their fixpoint in a few dozen steps.
MAX_STEPS = 200

#: Fault knobs whose parameter companions must ride along when the
#: main knob is dropped.
_FAULT_COMPANIONS = {
    "response_loss": ("response_loss_window",),
    "corruption": ("corruption_window",),
    "latency_spike_rate": ("latency_spike_window",
                           "latency_spike_factor"),
}


def _without_index(items: list, idx: int) -> list:
    return [x for i, x in enumerate(items) if i != idx]


def _candidates(spec: ScenarioSpec) -> Iterator[Tuple[str, ScenarioSpec]]:
    """Smaller variants, most aggressive first (dropping whole
    dimensions before trimming within them)."""
    # Drop a whole client fleet (keep at least one).
    if len(spec.clients) > 1:
        for i in range(len(spec.clients)):
            yield (f"drop fleet {i}",
                   replace(spec, clients=_without_index(spec.clients, i)))
    # Drop whole fault kinds (parameter companions ride along).
    if spec.faults:
        for key in list(spec.faults):
            if key.endswith(("_window", "_factor")):
                continue  # a companion, dropped with its main knob
            gone = {key, *_FAULT_COMPANIONS.get(key, ())}
            smaller = {k: v for k, v in spec.faults.items()
                       if k not in gone}
            yield (f"drop fault {key}",
                   replace(spec, faults=smaller or None))
    # Drop lifecycle actions.
    for i in range(len(spec.actions)):
        yield (f"drop action {spec.actions[i].kind}",
               replace(spec, actions=_without_index(spec.actions, i)))
    # Disable tracing (if the failure is not about spans, the world
    # shrinks a lot without it).
    if spec.trace:
        yield ("drop tracing", replace(spec, trace=False))
    # Trim client counts: halve first, then step down by one so the
    # minimum isn't stranded where halving overshoots (3 -> 1 fails to
    # reproduce but 2 would).
    for i, c in enumerate(spec.clients):
        steps = {max(1, c.n_clients // 2), c.n_clients - 1}
        for n in sorted(steps):
            if n < 1 or n >= c.n_clients:
                continue
            clients = list(spec.clients)
            clients[i] = replace(c, n_clients=n)
            yield (f"trim fleet {i} to {n}",
                   replace(spec, clients=clients))
    # Shorten the run.
    if spec.duration > MIN_DURATION * 2:
        yield (f"halve duration to {spec.duration / 2:.3f}",
               replace(spec, duration=spec.duration / 2))
    # Remove workers (clamping crash slots into range; faults that
    # target a removed slot are dropped).
    if spec.workers > 1:
        w = spec.workers - 1
        actions = [a for a in spec.actions
                   if a.kind != "crash" or a.slot < w]
        faults = spec.faults
        if faults and "worker_crashes" in faults:
            crashes = [c for c in faults["worker_crashes"] if c[0] < w]
            faults = dict(faults)
            if crashes:
                faults["worker_crashes"] = crashes
            else:
                faults.pop("worker_crashes")
            faults = faults or None
        yield (f"reduce to {w} worker(s)",
               replace(spec, workers=w, actions=actions, faults=faults))
    # Drop individual config overrides.
    for key in list(spec.overrides):
        if key in ("qat_rebalance_interval",) \
                and spec.overrides.get("qat_instance_policy") == "dynamic":
            continue  # parameter of a retained knob
        smaller = {k: v for k, v in spec.overrides.items() if k != key}
        if key == "qat_instance_policy":
            smaller.pop("qat_rebalance_interval", None)
        if key == "offload_sched_policy":
            smaller.pop("offload_sched_weights", None)
        yield (f"drop override {key}", replace(spec, overrides=smaller))


def shrink(spec: ScenarioSpec,
           fails: Callable[[ScenarioSpec], Optional[str]],
           log: Optional[Callable[[str], None]] = None
           ) -> Tuple[ScenarioSpec, str]:
    """Greedily minimize ``spec`` while ``fails`` keeps reporting a
    failure. Returns ``(minimal_spec, failure_description)``.

    ``spec`` itself must fail (the caller just observed it failing);
    raises ValueError if the oracle disagrees — a nondeterministic
    failure is worth knowing about loudly.
    """
    failure = fails(spec)
    if failure is None:
        raise ValueError(
            "spec passed on re-run; original failure not reproducible "
            f"(seed {spec.seed})")
    current = spec
    for _ in range(MAX_STEPS):
        improved = False
        for label, candidate in _candidates(current):
            try:
                candidate_failure = fails(candidate)
            except Exception as exc:  # the variant fails differently
                candidate_failure = f"{type(exc).__name__}: {exc}"
            if candidate_failure is not None:
                if log is not None:
                    log(f"  shrink: {label} (still fails: "
                        f"{candidate_failure.splitlines()[0][:80]})")
                current, failure = candidate, candidate_failure
                improved = True
                break  # restart candidate generation from the smaller spec
        if not improved:
            return current, failure
    return current, failure


def shrink_report(spec: ScenarioSpec, failure: str) -> str:
    """Human-facing minimal-repro report: the spec as replayable JSON,
    the one-line rerun command, and a pytest snippet pinning it."""
    import json
    spec_json = json.dumps(spec.to_dict(), sort_keys=True)
    lines = [
        "minimal failing scenario "
        f"({len(spec.clients)} fleet(s), "
        f"{len(spec.faults or {})} fault knob(s), "
        f"{len(spec.actions)} action(s), {spec.workers} worker(s)):",
        f"  {spec.describe()}",
        f"  failure: {failure}",
        "",
        "replay:",
        f"  python tools/fuzz_scenarios.py --spec '{spec_json}'",
        "",
        "pytest snippet:",
        "  def test_shrunk_scenario_regression():",
        "      from repro.testing.invariants import check_all",
        "      from repro.testing.scenario import ScenarioSpec, run_scenario",
        f"      spec = ScenarioSpec.from_dict({json.loads(spec_json)!r})",
        "      result = run_scenario(spec)",
        "      assert check_all(result.bed) == []",
    ]
    return "\n".join(lines)
